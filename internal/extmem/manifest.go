package extmem

import (
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sync"
)

// The replication manifest is the read side of ROADMAP item 3: one
// committed key-directory generation described as a flat list of named
// immutable segment blobs plus the exact bytes of the three state files
// (keydir.idx, dict.txt, meta.txt) and, when the generation has one,
// the attr.idx secondary-index sidecar. A replica is byte-identical to the
// source exactly when it holds the same blobs and the same state-file
// bytes, so the sync engine never needs to understand the segment
// format — it moves blobs whose size and payload CRC the manifest
// already pins, and installs the state bundle keydir-last.

// State-file base names of the segmented layout, exported for the
// replication transport (internal/segstore), which must name them —
// list-excluding them from the blob namespace, committing them as a
// bundle — without ever decoding them.
const (
	KeydirFileName  = keydirFile
	DictFileName    = dictFile
	MetaFileName    = metaFile
	AttrIdxFileName = attrIdxFile
)

// SegmentMeta pins one committed segment blob: its base name, total
// file size, and the stored-payload range [DataOff, DataOff+Payload)
// whose CRC32 (IEEE) the key directory records. Payload here is the
// on-disk (for compressed v2 segments: compressed) byte count, and CRC
// the checksum of those stored bytes, so the transport verifies a
// transferred blob without decoding any segment format. Size is always
// DataOff+Payload — a committed segment file ends exactly at its
// stored payload.
type SegmentMeta struct {
	Name    string
	Size    int64
	DataOff int64
	Payload int64
	CRC     uint32
}

// Manifest describes one committed generation for replication.
type Manifest struct {
	// Generation identifies the generation: the hex CRC32 (IEEE) of the
	// encoded key directory, so both ends of a sync derive the same id
	// from the same bytes.
	Generation string
	Versions   int
	Segments   []SegmentMeta
}

// GenerationID derives the manifest generation id from encoded
// keydir.idx bytes. The file ends with its own CRC32, and the CRC of
// data with its checksum appended is the fixed residue 0x2144df1c for
// ANY data — hashing the whole file would give every generation the
// same id. Hash the content without the trailing self-check.
func GenerationID(keydir []byte) string {
	if n := len(keydir); n >= crc32.Size {
		keydir = keydir[:n-crc32.Size]
	}
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(keydir))
}

// DecodeManifest parses encoded keydir.idx bytes (checksum verified)
// into the replication manifest of that generation.
func DecodeManifest(keydir []byte) (*Manifest, error) {
	d, err := decodeKeyDirectory(keydir)
	if err != nil {
		return nil, err
	}
	m := &Manifest{Generation: GenerationID(keydir), Versions: d.versions}
	for _, r := range d.roots {
		for _, s := range r.segs {
			m.Segments = append(m.Segments, SegmentMeta{
				Name:    s.file,
				Size:    s.dataOff + s.stored,
				DataOff: s.dataOff,
				Payload: s.stored,
				CRC:     s.storedCRC,
			})
		}
	}
	return m, nil
}

// ReplicaView is a pinned read view of the current committed generation
// for replication: the manifest, the exact state-file bytes, and access
// to the generation's segment files. The pin keeps those files on disk
// until Close even if later Adds supersede them — a puller streaming
// from the view never observes a half-installed generation.
type ReplicaView struct {
	ar      *Archiver
	gen     int
	man     *Manifest
	keydir  []byte
	dict    []byte
	meta    []byte
	attrIdx []byte
	names   map[string]bool

	closeOnce sync.Once
}

// OpenReplicaView pins the current generation and captures its state
// bytes from disk. The caller must serialize against writers (the store
// layer's lock): the three files are read back-to-back and must all
// belong to one committed generation.
func (ar *Archiver) OpenReplicaView() (*ReplicaView, error) {
	kd, err := ar.fs.ReadFile(filepath.Join(ar.dir, keydirFile))
	if err != nil {
		return nil, fmt.Errorf("extmem: replica view: %w", err)
	}
	dict, err := ar.fs.ReadFile(filepath.Join(ar.dir, dictFile))
	if err != nil {
		return nil, fmt.Errorf("extmem: replica view: %w", err)
	}
	meta, err := ar.fs.ReadFile(filepath.Join(ar.dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("extmem: replica view: %w", err)
	}
	man, err := DecodeManifest(kd)
	if err != nil {
		return nil, err
	}
	// The attr.idx sidecar rides along when it belongs to this exact
	// generation; a missing or stale one (a best-effort update that
	// failed) is simply omitted — the replica rebuilds on demand.
	var aidx []byte
	if data, err := ar.fs.ReadFile(filepath.Join(ar.dir, attrIdxFile)); err == nil {
		kdCRC := crc32.ChecksumIEEE(kd[:len(kd)-crc32.Size])
		if x, derr := decodeAttrIndex(data); derr == nil && x.keydirCRC == kdCRC {
			aidx = data
		}
	}
	v := &ReplicaView{
		ar: ar, gen: ar.acquireGen(), man: man,
		keydir: kd, dict: dict, meta: meta, attrIdx: aidx,
		names: map[string]bool{},
	}
	for _, s := range man.Segments {
		v.names[s.Name] = true
	}
	return v, nil
}

// Manifest returns the pinned generation's manifest.
func (v *ReplicaView) Manifest() *Manifest { return v.man }

// Bundle returns the exact bytes of the generation's three state files
// (keydir.idx, dict.txt, meta.txt).
func (v *ReplicaView) Bundle() (keydir, dict, meta []byte) {
	return v.keydir, v.dict, v.meta
}

// AttrIdx returns the exact bytes of the generation's attr.idx
// secondary-index sidecar, or nil when the source has none for this
// generation (the sidecar is advisory; replicas rebuild on demand).
func (v *ReplicaView) AttrIdx() []byte { return v.attrIdx }

// HasSegment reports whether name is a segment of the pinned
// generation.
func (v *ReplicaView) HasSegment(name string) bool { return v.names[name] }

// OpenSegment opens one segment blob of the pinned generation for
// streaming, returning its size. Only names the manifest lists are
// served: the archive directory may hold half-written segments of an
// in-flight Add under their final names, and those must never leak to a
// replica. The open file handle outlives the view — closing the view
// (and even the generation sweep unlinking the file) does not disturb
// an in-flight stream.
func (v *ReplicaView) OpenSegment(name string) (io.ReadCloser, int64, error) {
	if !v.names[name] {
		return nil, 0, fmt.Errorf("extmem: segment %s not in generation %s", name, v.man.Generation)
	}
	path := filepath.Join(v.ar.dir, name)
	fi, err := v.ar.fs.Stat(path)
	if err != nil {
		return nil, 0, fmt.Errorf("extmem: replica view: %w", err)
	}
	f, err := v.ar.fs.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("extmem: replica view: %w", err)
	}
	return f, fi.Size(), nil
}

// Close releases the generation pin; superseded segment files become
// eligible for deletion. Close is idempotent.
func (v *ReplicaView) Close() error {
	v.closeOnce.Do(func() { v.ar.releaseGen(v.gen) })
	return nil
}
