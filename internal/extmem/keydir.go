package extmem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strings"
	"sync"

	"xarch/internal/fsio"
	"xarch/internal/intervals"
)

// The persistent key directory is the index of the segmented archive
// layout: the archive body lives in key-range-partitioned segment files
// (one contiguous run of top-level keyed subtrees each), and the
// directory maps every canonical key value at the top two levels to its
// location — (segment, byte offset, subtree size) — plus a version
// interval summary, so selective queries seek straight to the matching
// subtree and merges touch only the segments whose key ranges overlap
// the incoming version.
//
// The directory is immutable once committed: every AddVersion builds a
// fresh keyDirectory and installs it atomically (temp file + rename), so
// open query views keep reading the directory — and the segment files —
// they captured. keydir.idx carries a whole-file CRC32; a corrupt or
// truncated directory is detected at Open and rebuilt by scanning the
// segment files instead of failing the archive.

const (
	keydirFile   = "keydir.idx"
	keydirMagic  = "XKD1"
	keydirFormat = 2 // written; format 1 (pre-v2-segments) still decodes
)

// attrRec is one attribute of a top-level subtree, held in the directory
// so query scans can synthesize the root's token prefix without touching
// any segment.
type attrRec struct {
	name  string
	tag   int // dictionary id, resolved in memory
	value string
}

// childEntry locates one second-level subtree inside a segment payload.
// timeStr is the node's explicit timestamp exactly as carried by its open
// token ("" = inherited from the root's effective timestamp) — the
// version interval summary that lets merges and version projections skip
// the subtree without reading its bytes. time caches the parsed form
// (nil when timeStr is "" or the directory has not been through a
// decode); it is shared by every reader of the generation and must not
// be mutated.
type childEntry struct {
	name    string
	tag     int // dictionary id, resolved in memory
	key     *tkey
	timeStr string
	time    *intervals.Set // parsed timeStr; shared, read-only
	offset  int64          // within the (uncompressed) segment payload
	size    int64
}

// segmentRecord describes one segment file: a contiguous key range of
// second-level subtrees (or, for a raw root, a verbatim slice of the
// root's whole subtree). payload/crc always describe the uncompressed
// token bytes; stored/storedCRC the on-disk payload (equal for v1 and
// uncompressed v2 segments), so replication can verify a transferred
// blob without decoding it.
type segmentRecord struct {
	file      string // base name within the archive directory
	format    int    // segment header format (segFormat or segFormatV2)
	dataOff   int64  // payload start (after header incl. any dictionary)
	payload   int64  // uncompressed payload bytes
	crc       uint32 // CRC32 (IEEE) of the uncompressed payload
	stored    int64  // on-disk payload bytes
	storedCRC uint32 // CRC32 (IEEE) of the on-disk payload bytes
	dictLen   int64  // dictionary section bytes (0 for format 1)
	entries   []childEntry
}

// firstLabel returns the label of the segment's first entry.
func (sr *segmentRecord) firstLabel() (string, *tkey) {
	e := &sr.entries[0]
	return e.name, e.key
}

// rootRecord describes one top-level subtree of the archive. For
// non-frontier roots the segments hold the children and the open/attrs
// are synthesized from this record; a raw root (the degenerate case of a
// frontier at depth 1) stores its whole subtree verbatim in one segment.
// A record is immutable once its directory is installed; the lazily
// built entry index (dirindex.go) is therefore shared by every query
// view of the generation.
type rootRecord struct {
	name    string
	tag     int // dictionary id, resolved in memory
	key     *tkey
	timeStr string         // "" = inherited from the archive root timestamp
	time    *intervals.Set // parsed timeStr; shared, read-only; may be nil
	attrs   []attrRec
	raw     bool
	segs    []*segmentRecord

	idxOnce sync.Once
	idx     *dirIndex
}

// keyDirectory is one immutable snapshot of the segmented layout plus
// the archive-level metadata (version count, root timestamp).
type keyDirectory struct {
	versions   int
	rootTime   *intervals.Set
	roots      []*rootRecord
	encodedLen int    // size of the persisted form; set at encode/decode
	crc        uint32 // whole-file CRC of the persisted form; set at encode/decode
}

// files returns the set of segment files the directory references.
func (d *keyDirectory) files() map[string]bool {
	m := map[string]bool{}
	for _, r := range d.roots {
		for _, s := range r.segs {
			m[s.file] = true
		}
	}
	return m
}

// entryCount returns the number of child entries across all segments.
func (d *keyDirectory) entryCount() int {
	n := 0
	for _, r := range d.roots {
		for _, s := range r.segs {
			n += len(s.entries)
		}
	}
	return n
}

// compareLabels orders two (tag name, key) labels exactly like the merge
// pipeline: name first, then the canonical key order.
func compareLabels(an string, ak *tkey, bn string, bk *tkey) int {
	if c := strings.Compare(an, bn); c != 0 {
		return c
	}
	return compareKeys(ak, bk)
}

// resolveTags fills the in-memory dictionary ids of every record so query
// scans can synthesize tokens without name lookups.
func (d *keyDirectory) resolveTags(dict *dictionary) {
	for _, r := range d.roots {
		r.tag = dict.id(r.name)
		for i := range r.attrs {
			r.attrs[i].tag = dict.id(r.attrs[i].name)
		}
		for _, s := range r.segs {
			for i := range s.entries {
				s.entries[i].tag = dict.id(s.entries[i].name)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Binary encoding (keydir.idx)

type kdWriter struct {
	b bytes.Buffer
}

func (w *kdWriter) varint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.b.Write(buf[:n])
}

func (w *kdWriter) str(s string) {
	w.varint(uint64(len(s)))
	w.b.WriteString(s)
}

func (w *kdWriter) key(k *tkey) {
	if k == nil {
		w.b.WriteByte(0)
		return
	}
	w.b.WriteByte(1)
	w.varint(uint64(len(k.paths)))
	for i := range k.paths {
		w.str(k.paths[i])
		w.str(k.canon[i])
	}
}

// encode renders the directory with a trailing whole-file CRC32.
func (d *keyDirectory) encode() []byte {
	var w kdWriter
	w.b.WriteString(keydirMagic)
	w.varint(keydirFormat)
	w.varint(uint64(d.versions))
	w.str(d.rootTime.String())
	w.varint(uint64(len(d.roots)))
	for _, r := range d.roots {
		w.str(r.name)
		w.key(r.key)
		w.str(r.timeStr)
		w.varint(uint64(len(r.attrs)))
		for _, a := range r.attrs {
			w.str(a.name)
			w.str(a.value)
		}
		if r.raw {
			w.b.WriteByte(1)
		} else {
			w.b.WriteByte(0)
		}
		w.varint(uint64(len(r.segs)))
		for _, s := range r.segs {
			w.str(s.file)
			w.varint(uint64(s.format))
			w.varint(uint64(s.dataOff))
			w.varint(uint64(s.payload))
			w.varint(uint64(s.crc))
			w.varint(uint64(s.stored))
			w.varint(uint64(s.storedCRC))
			w.varint(uint64(s.dictLen))
			w.varint(uint64(len(s.entries)))
			for i := range s.entries {
				e := &s.entries[i]
				w.str(e.name)
				w.key(e.key)
				w.str(e.timeStr)
				w.varint(uint64(e.offset))
				w.varint(uint64(e.size))
			}
		}
	}
	body := w.b.Bytes()
	sum := crc32.ChecksumIEEE(body)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	out := append(body, tail[:]...)
	d.encodedLen = len(out)
	d.crc = sum
	return out
}

type kdReader struct {
	r   *bytes.Reader
	err error
}

func (r *kdReader) varint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = err
	}
	return v
}

func (r *kdReader) str() string {
	n := r.varint()
	if r.err != nil {
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		r.err = err
		return ""
	}
	return string(buf)
}

func (r *kdReader) byte() byte {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	if err != nil {
		r.err = err
	}
	return b
}

func (r *kdReader) key() *tkey {
	if r.byte() == 0 {
		return nil
	}
	k := &tkey{}
	n := r.varint()
	for i := uint64(0); i < n && r.err == nil; i++ {
		k.paths = append(k.paths, r.str())
		k.canon = append(k.canon, r.str())
	}
	return k
}

// decodeKeyDirectory parses keydir.idx bytes, verifying the CRC first.
func decodeKeyDirectory(data []byte) (*keyDirectory, error) {
	if len(data) < len(keydirMagic)+4 {
		return nil, fmt.Errorf("extmem: key directory truncated")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("extmem: key directory checksum mismatch")
	}
	if string(body[:len(keydirMagic)]) != keydirMagic {
		return nil, fmt.Errorf("extmem: key directory bad magic")
	}
	r := &kdReader{r: bytes.NewReader(body[len(keydirMagic):])}
	format := r.varint()
	if format != 1 && format != keydirFormat {
		return nil, fmt.Errorf("extmem: key directory format %d not supported", format)
	}
	d := &keyDirectory{}
	d.versions = int(r.varint())
	ts, err := intervals.Parse(r.str())
	if err != nil {
		return nil, fmt.Errorf("extmem: key directory root timestamp: %w", err)
	}
	d.rootTime = ts
	nRoots := r.varint()
	for i := uint64(0); i < nRoots && r.err == nil; i++ {
		rr := &rootRecord{}
		rr.name = r.str()
		rr.key = r.key()
		rr.timeStr = r.str()
		nAttrs := r.varint()
		for j := uint64(0); j < nAttrs && r.err == nil; j++ {
			rr.attrs = append(rr.attrs, attrRec{name: r.str(), value: r.str()})
		}
		rr.raw = r.byte() != 0
		nSegs := r.varint()
		for j := uint64(0); j < nSegs && r.err == nil; j++ {
			s := &segmentRecord{}
			s.file = r.str()
			if format >= 2 {
				s.format = int(r.varint())
			} else {
				s.format = segFormat
			}
			s.dataOff = int64(r.varint())
			s.payload = int64(r.varint())
			s.crc = uint32(r.varint())
			if format >= 2 {
				s.stored = int64(r.varint())
				s.storedCRC = uint32(r.varint())
				s.dictLen = int64(r.varint())
			} else {
				s.stored, s.storedCRC = s.payload, s.crc
			}
			nEnt := r.varint()
			for k := uint64(0); k < nEnt && r.err == nil; k++ {
				e := childEntry{}
				e.name = r.str()
				e.key = r.key()
				e.timeStr = r.str()
				e.offset = int64(r.varint())
				e.size = int64(r.varint())
				s.entries = append(s.entries, e)
			}
			rr.segs = append(rr.segs, s)
		}
		d.roots = append(d.roots, rr)
	}
	if r.err != nil {
		return nil, fmt.Errorf("extmem: key directory: %w", r.err)
	}
	if err := d.parseTimes(); err != nil {
		return nil, err
	}
	d.encodedLen = len(data)
	d.crc = binary.LittleEndian.Uint32(tail)
	return d, nil
}

// parseTimes caches the parsed interval set of every explicit root and
// entry timestamp, so query resolution and merge planning over a
// committed directory never re-parse a timestamp string. The cached
// sets are shared by every reader of the generation: read-only.
func (d *keyDirectory) parseTimes() error {
	for _, rr := range d.roots {
		if rr.timeStr != "" {
			ts, err := intervals.Parse(rr.timeStr)
			if err != nil {
				return fmt.Errorf("extmem: key directory root timestamp: %w", err)
			}
			rr.time = ts
		}
		for _, s := range rr.segs {
			for i := range s.entries {
				e := &s.entries[i]
				if e.timeStr == "" {
					continue
				}
				ts, err := intervals.Parse(e.timeStr)
				if err != nil {
					return fmt.Errorf("extmem: key directory entry timestamp: %w", err)
				}
				e.time = ts
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Crash-safe file replacement

// writeFileAtomic replaces path with data durably: the bytes go to a
// sibling temp file which is fsynced, renamed over path, and the parent
// directory fsynced, so a crash leaves either the old or the new file —
// never a torn one. Failures of the durability-critical steps (fsync,
// rename, directory fsync) are marked as commit faults: after one of
// those the state of the page cache is unknowable, so the caller must
// poison the writer rather than silently retry (the fsyncgate lesson).
// fs.SyncDir itself tolerates only the benign "directory fsync
// unsupported" errors; everything else surfaces here as a commit
// failure.
func writeFileAtomic(fs fsio.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("extmem: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return commitFaultf("fsync "+filepath.Base(tmp), err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return commitFaultf("close "+filepath.Base(tmp), err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return commitFaultf("rename "+filepath.Base(path), err)
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		return commitFaultf("fsync dir", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// meta.txt (text, format 2) — versions, root timestamp and the root
// records including each root's ordered segment file list. The records
// are duplicated here (they are tiny) so a corrupt key directory can be
// rebuilt from meta + exactly the committed segment files: crash
// orphans lying around on disk are never consulted.

// encodeMeta renders meta.txt format 2.
func encodeMeta(d *keyDirectory) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "xarch-ext 2\nversions %d\nroottime %q\nroots %d\n",
		d.versions, d.rootTime.String(), len(d.roots))
	for _, r := range d.roots {
		hasKey, nk := 0, 0
		if r.key != nil {
			hasKey, nk = 1, len(r.key.paths)
		}
		raw := 0
		if r.raw {
			raw = 1
		}
		fmt.Fprintf(&b, "root %q %q %d %d %d %d %d\n", r.name, r.timeStr, hasKey, nk, len(r.attrs), raw, len(r.segs))
		if r.key != nil {
			for i := range r.key.paths {
				fmt.Fprintf(&b, "kp %q %q\n", r.key.paths[i], r.key.canon[i])
			}
		}
		for _, a := range r.attrs {
			fmt.Fprintf(&b, "attr %q %q\n", a.name, a.value)
		}
		for _, s := range r.segs {
			fmt.Fprintf(&b, "seg %q\n", s.file)
		}
	}
	return []byte(b.String())
}

// parseMetaV2 parses meta.txt format 2 into a directory skeleton:
// version count, root timestamp, and root records whose segments carry
// file names only (the rebuild fills in the rest from the files).
func parseMetaV2(r io.Reader) (*keyDirectory, error) {
	d := &keyDirectory{}
	var format int
	if _, err := fmt.Fscanf(r, "xarch-ext %d\n", &format); err != nil {
		return nil, fmt.Errorf("extmem: corrupt meta: %w", err)
	}
	if format != 2 {
		return nil, fmt.Errorf("extmem: meta format %d not supported", format)
	}
	var timeStr string
	var nRoots int
	if _, err := fmt.Fscanf(r, "versions %d\nroottime %q\nroots %d\n", &d.versions, &timeStr, &nRoots); err != nil {
		return nil, fmt.Errorf("extmem: corrupt meta: %w", err)
	}
	ts, err := intervals.Parse(timeStr)
	if err != nil {
		return nil, fmt.Errorf("extmem: corrupt meta timestamp: %w", err)
	}
	d.rootTime = ts
	for i := 0; i < nRoots; i++ {
		rr := &rootRecord{}
		var hasKey, nk, nAttrs, raw, nSegs int
		if _, err := fmt.Fscanf(r, "root %q %q %d %d %d %d %d\n", &rr.name, &rr.timeStr, &hasKey, &nk, &nAttrs, &raw, &nSegs); err != nil {
			return nil, fmt.Errorf("extmem: corrupt meta root: %w", err)
		}
		rr.raw = raw != 0
		if hasKey != 0 {
			rr.key = &tkey{}
			for j := 0; j < nk; j++ {
				var p, c string
				if _, err := fmt.Fscanf(r, "kp %q %q\n", &p, &c); err != nil {
					return nil, fmt.Errorf("extmem: corrupt meta key path: %w", err)
				}
				rr.key.paths = append(rr.key.paths, p)
				rr.key.canon = append(rr.key.canon, c)
			}
		}
		for j := 0; j < nAttrs; j++ {
			var n, v string
			if _, err := fmt.Fscanf(r, "attr %q %q\n", &n, &v); err != nil {
				return nil, fmt.Errorf("extmem: corrupt meta attr: %w", err)
			}
			rr.attrs = append(rr.attrs, attrRec{name: n, value: v})
		}
		for j := 0; j < nSegs; j++ {
			var f string
			if _, err := fmt.Fscanf(r, "seg %q\n", &f); err != nil {
				return nil, fmt.Errorf("extmem: corrupt meta segment list: %w", err)
			}
			rr.segs = append(rr.segs, &segmentRecord{file: f})
		}
		d.roots = append(d.roots, rr)
	}
	return d, nil
}
