package extmem

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"path/filepath"
	"sync/atomic"

	"xarch/internal/fsio"
)

// Segment files hold the archive body. Each file starts with a versioned
// header (magic, format, flags, payload length, payload CRC32, and the
// owning root's immutable label) followed by the payload: a contiguous
// run of second-level subtree token streams, or — for a raw root — a
// verbatim slice of the root's whole subtree. The root label in the
// header lets a directory rebuild cross-check that each file meta.txt
// lists really belongs to the root it is listed under.
//
// Segment files are never modified in place: rewrites produce fresh
// files (monotonic ids) and the key directory rename is the commit
// point, so a crash leaves either layout intact and at worst some
// orphan files, which Open garbage-collects.

const (
	segMagic    = "XSG1"
	segFormat   = 1 // legacy inline-string encoding
	segFormatV2 = 2 // interned dictionary + optional block compression
)

const (
	segFlagRaw        = 0x01
	segFlagCompressed = 0x02 // v2 only: payload stored as deflated blocks
)

// segmentHeader is the decoded fixed+variable header of one segment
// file. For format 2 the header continues past the root label with the
// stored-payload geometry (stored bytes, stored CRC, block index) and
// the dictionary section; payload/crc always describe the uncompressed
// token bytes, so verification is format-independent.
type segmentHeader struct {
	format     int
	raw        bool
	compressed bool
	payload    int64
	crc        uint32
	rootName   string
	rootKey    *tkey
	dataOff    int64

	// Format 2 extras. dict carries the decoded dictionary plus the
	// block geometry; stored/storedCRC describe the on-disk payload
	// bytes (equal to payload/crc when not compressed).
	stored    int64
	storedCRC uint32
	dictLen   int64
	dict      *segDict
}

// encodeSegmentHeader renders a format-1 header; the payload length and
// CRC may be placeholders to be patched by closeCurrent. (Format-2
// headers are rendered whole by segEncoder.encode — a v2 file is
// written in one pass, never patched.)
func encodeSegmentHeader(h *segmentHeader) []byte {
	var w kdWriter
	w.b.WriteString(segMagic)
	w.b.WriteByte(segFormat)
	var flags byte
	if h.raw {
		flags |= segFlagRaw
	}
	w.b.WriteByte(flags)
	var fixed [12]byte
	binary.LittleEndian.PutUint64(fixed[:8], uint64(h.payload))
	binary.LittleEndian.PutUint32(fixed[8:], h.crc)
	w.b.Write(fixed[:])
	w.str(h.rootName)
	w.key(h.rootKey)
	return w.b.Bytes()
}

// fixedOff is the offset of the payload-length/CRC fields in the header.
const segFixedOff = len(segMagic) + 2

// readSegmentHeader parses the header at the start of f. The variable
// tail (the root label) is read through a position-tracking reader, so
// arbitrarily large root keys parse back exactly as written.
func readSegmentHeader(f io.ReadSeeker) (*segmentHeader, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("extmem: %w", err)
	}
	fixed := make([]byte, segFixedOff+12)
	if _, err := io.ReadFull(f, fixed); err != nil {
		return nil, fmt.Errorf("extmem: not a segment file: %w", err)
	}
	if string(fixed[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("extmem: not a segment file")
	}
	format := int(fixed[len(segMagic)])
	if format != segFormat && format != segFormatV2 {
		return nil, fmt.Errorf("extmem: segment format %d not supported", format)
	}
	flags := fixed[len(segMagic)+1]
	h := &segmentHeader{
		format:     format,
		raw:        flags&segFlagRaw != 0,
		compressed: flags&segFlagCompressed != 0,
	}
	if h.compressed && format == segFormat {
		return nil, fmt.Errorf("extmem: format 1 segment with compression flag")
	}
	h.payload = int64(binary.LittleEndian.Uint64(fixed[segFixedOff : segFixedOff+8]))
	h.crc = binary.LittleEndian.Uint32(fixed[segFixedOff+8 : segFixedOff+12])
	pr := &posReader{br: bufio.NewReaderSize(f, 4096)}
	var err error
	if h.rootName, err = pr.str(); err != nil {
		return nil, fmt.Errorf("extmem: segment header: %w", err)
	}
	hasKey, err := pr.byte()
	if err != nil {
		return nil, fmt.Errorf("extmem: segment header: %w", err)
	}
	if hasKey != 0 {
		k := &tkey{}
		n, err := pr.varint()
		if err != nil {
			return nil, fmt.Errorf("extmem: segment header: %w", err)
		}
		for i := uint64(0); i < n; i++ {
			kp, err := pr.str()
			if err != nil {
				return nil, fmt.Errorf("extmem: segment header: %w", err)
			}
			kc, err := pr.str()
			if err != nil {
				return nil, fmt.Errorf("extmem: segment header: %w", err)
			}
			k.paths = append(k.paths, kp)
			k.canon = append(k.canon, kc)
		}
		h.rootKey = k
	}
	if format == segFormat {
		h.stored, h.storedCRC = h.payload, h.crc
		h.dataOff = int64(len(fixed)) + pr.pos
		return h, nil
	}
	// Format 2 extras: stored geometry, block index, dictionary.
	stored, err := pr.varint()
	if err != nil {
		return nil, fmt.Errorf("extmem: segment header: %w", err)
	}
	h.stored = int64(stored)
	var sc [4]byte
	if err := pr.readFull(sc[:]); err != nil {
		return nil, fmt.Errorf("extmem: segment header: %w", err)
	}
	h.storedCRC = binary.LittleEndian.Uint32(sc[:])
	blockLen, err := pr.varint()
	if err != nil {
		return nil, fmt.Errorf("extmem: segment header: %w", err)
	}
	if (blockLen > 0) != h.compressed {
		return nil, fmt.Errorf("extmem: segment header: block size disagrees with compression flag")
	}
	var blockSizes []int64
	if blockLen > 0 {
		nBlocks, err := pr.varint()
		if err != nil {
			return nil, fmt.Errorf("extmem: segment header: %w", err)
		}
		want := (uint64(h.payload) + blockLen - 1) / blockLen
		if nBlocks != want {
			return nil, fmt.Errorf("extmem: segment header: %d blocks for %d payload bytes (want %d)", nBlocks, h.payload, want)
		}
		blockSizes = make([]int64, 0, nBlocks)
		var sum int64
		for i := uint64(0); i < nBlocks; i++ {
			n, err := pr.varint()
			if err != nil {
				return nil, fmt.Errorf("extmem: segment header: %w", err)
			}
			blockSizes = append(blockSizes, int64(n))
			sum += int64(n)
		}
		if sum != h.stored {
			return nil, fmt.Errorf("extmem: segment header: block sizes sum to %d, stored is %d", sum, h.stored)
		}
	}
	dictLen, err := pr.varint()
	if err != nil {
		return nil, fmt.Errorf("extmem: segment header: %w", err)
	}
	h.dictLen = int64(dictLen)
	dictBytes := make([]byte, dictLen)
	if err := pr.readFull(dictBytes); err != nil {
		return nil, fmt.Errorf("extmem: segment dictionary: %w", err)
	}
	dict, err := decodeSegDict(dictBytes)
	if err != nil {
		return nil, err
	}
	h.dataOff = int64(len(fixed)) + pr.pos
	dict.payload = h.payload
	if blockLen > 0 {
		dict.blockLen = int(blockLen)
		dict.blockOff = make([]int64, 0, len(blockSizes)+1)
		off := h.dataOff
		dict.blockOff = append(dict.blockOff, off)
		for _, n := range blockSizes {
			off += n
			dict.blockOff = append(dict.blockOff, off)
		}
	}
	h.dict = dict
	return h, nil
}

// verifySegment recomputes the payload CRC of a segment file against
// its header and the directory record. For format-2 segments it goes
// further: the stored (possibly compressed) bytes are checked against
// the stored CRC, the decompressed payload against the payload CRC, and
// the whole token stream is walked against the dictionary, so a
// dangling interned id is reported as corruption just like a bad
// checksum.
func verifySegment(fs fsio.FS, path string, sr *segmentRecord) error {
	f, err := fs.Open(path)
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	defer f.Close()
	h, err := readSegmentHeader(f)
	if err != nil {
		return err
	}
	if h.format != sr.format || h.payload != sr.payload || h.crc != sr.crc || h.dataOff != sr.dataOff {
		return fmt.Errorf("extmem: segment %s header disagrees with directory", sr.file)
	}
	if h.format == segFormat {
		crc := crc32.NewIEEE()
		if _, err := f.Seek(h.dataOff, io.SeekStart); err != nil {
			return fmt.Errorf("extmem: %w", err)
		}
		if _, err := io.CopyN(crc, f, h.payload); err != nil {
			return fmt.Errorf("extmem: segment %s truncated: %w", sr.file, err)
		}
		if crc.Sum32() != sr.crc {
			return fmt.Errorf("extmem: segment %s payload checksum mismatch", sr.file)
		}
		return nil
	}
	if h.stored != sr.stored || h.storedCRC != sr.storedCRC || h.dictLen != sr.dictLen {
		return fmt.Errorf("extmem: segment %s header disagrees with directory", sr.file)
	}
	crc := crc32.NewIEEE()
	if _, err := f.Seek(h.dataOff, io.SeekStart); err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	if _, err := io.CopyN(crc, f, h.stored); err != nil {
		return fmt.Errorf("extmem: segment %s truncated: %w", sr.file, err)
	}
	if crc.Sum32() != h.storedCRC {
		return fmt.Errorf("extmem: segment %s stored payload checksum mismatch", sr.file)
	}
	// Decompress (when compressed) and walk every token: recompute the
	// uncompressed CRC and resolve every interned reference.
	var payload io.Reader
	var blk blockReader
	if h.compressed {
		blk.reset(f, h.dict, 0, h.payload, nil)
		payload = &blk
	} else {
		if _, err := f.Seek(h.dataOff, io.SeekStart); err != nil {
			return fmt.Errorf("extmem: %w", err)
		}
		payload = io.LimitReader(f, h.payload)
	}
	// The dictionary materializes lazily, so force every entry here:
	// fsck must flag a corrupt entry even when no token references it.
	if err := h.dict.validate(); err != nil {
		return fmt.Errorf("extmem: segment %s: %w", sr.file, err)
	}
	ucrc := crc32.NewIEEE()
	tr := newTokenReaderDict(io.TeeReader(payload, ucrc), h.dict)
	defer tr.release()
	for {
		if _, ok := tr.take(); !ok {
			break
		}
	}
	if tr.err != nil {
		return fmt.Errorf("extmem: segment %s: %w", sr.file, tr.err)
	}
	if ucrc.Sum32() != sr.crc {
		return fmt.Errorf("extmem: segment %s payload checksum mismatch", sr.file)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Segment writing

// segPayloadWriter counts and checksums the payload bytes of one segment
// file as they pass through to disk.
type segPayloadWriter struct {
	f   fsio.File
	crc hash.Hash32
	n   int64
}

func (w *segPayloadWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	if n > 0 {
		w.crc.Write(p[:n])
		w.n += int64(n)
	}
	return n, err
}

// segmentSetWriter streams merged subtrees into a sequence of segment
// files, rolling to a fresh file whenever the current payload passes the
// target size at a child boundary, and recording one directory entry per
// child. The embedded tokenWriter is stable across rolls, so a merge can
// keep one output handle for the whole pass.
//
// When the caller knows the total payload it will write (the compactor
// does), planned/minTail arm tail absorption: a roll is suppressed when
// the bytes still to come would leave a final file smaller than minTail,
// so repacking can never end in a fresh undersized tail.
type segmentSetWriter struct {
	ar       *Archiver
	root     *rootRecord
	raw      bool
	format   int  // segFormat or segFormatV2
	compress bool // v2 only: block-compress payloads
	target   int64

	planned int64 // total payload the caller will write; 0 = unknown
	minTail int64 // smallest acceptable final file under planned
	written int64 // payload completed in already-closed files

	// out is where the merge pipeline emits tokens: the streaming
	// inline writer (v1) or the capture buffer (v2).
	out tokenSink

	// v1 streaming state.
	tw   *tokenWriter
	pw   *segPayloadWriter
	f    fsio.File
	head int64 // header length of the current file

	// v2 capture state: the current file's tokens are buffered (the
	// dictionary needs the whole population before ids exist), encoded
	// and written in one pass at closeCurrent. No file exists until
	// then.
	cap       *captureWriter
	enc       *segEncoder
	marks     []entryMark
	markStart int

	cur      *segmentRecord
	pending  childEntry
	emit     func(*segmentRecord)
	onCreate func(name string)
	err      error
}

// newSegmentSetWriter returns a writer emitting completed segment
// records through emit (in output order, so reused segments can be
// interleaved by the caller). onCreate fires as soon as a file exists on
// disk — before it is complete — so failed merges can remove every file
// they created, not only the finished ones.
func newSegmentSetWriter(ar *Archiver, root *rootRecord, raw bool, emit func(*segmentRecord), onCreate func(name string)) *segmentSetWriter {
	sw := &segmentSetWriter{
		ar: ar, root: root, raw: raw, target: int64(ar.cfg.SegmentTarget),
		format: ar.cfg.SegmentFormat, compress: ar.cfg.Compression,
		tw: newTokenWriter(io.Discard), emit: emit, onCreate: onCreate,
	}
	if sw.format == segFormatV2 {
		sw.cap = &captureWriter{}
		sw.enc = newSegEncoder()
		sw.enc.wantOffs = !raw && !ar.cfg.NoAttrIndex
		sw.out = sw.cap
	} else {
		sw.out = sw.tw
	}
	return sw
}

func (sw *segmentSetWriter) fail(err error) {
	if sw.err == nil {
		sw.err = err
	}
}

// open starts a fresh segment. For v1 the file is created up front and
// streamed; for v2 only the capture buffer starts — the file (and its
// name) appears at closeCurrent, written complete in one pass.
func (sw *segmentSetWriter) open() {
	if sw.err != nil {
		return
	}
	if sw.format == segFormatV2 {
		sw.cap.reset()
		sw.marks = sw.marks[:0]
		sw.cur = &segmentRecord{format: segFormatV2}
		return
	}
	name := fmt.Sprintf("seg-%08d.tok", sw.ar.nextSeg)
	sw.ar.nextSeg++
	f, err := sw.ar.fs.Create(filepath.Join(sw.ar.dir, name))
	if err != nil {
		sw.fail(fmt.Errorf("extmem: create segment: %w", err))
		return
	}
	if sw.onCreate != nil {
		sw.onCreate(name)
	}
	head := encodeSegmentHeader(&segmentHeader{raw: sw.raw, rootName: sw.root.name, rootKey: sw.root.key})
	if _, err := f.Write(head); err != nil {
		f.Close()
		sw.fail(fmt.Errorf("extmem: %w", err))
		return
	}
	sw.f = f
	sw.head = int64(len(head))
	sw.pw = &segPayloadWriter{f: f, crc: crc32.NewIEEE()}
	sw.cur = &segmentRecord{file: name, format: segFormat, dataOff: sw.head}
	sw.tw.w.Reset(sw.pw)
}

// closeCurrent finishes the open segment: for v1 the streamed file is
// patched with the payload length and CRC, fsynced, and emitted; for v2
// the captured tokens are encoded (dictionary, payload, optional block
// compression) and written as a complete file in one pass.
func (sw *segmentSetWriter) closeCurrent() {
	if sw.format == segFormatV2 {
		sw.closeV2()
		return
	}
	if sw.cur == nil || sw.err != nil {
		if sw.cur != nil && sw.err != nil && sw.f != nil {
			sw.f.Close()
			sw.f = nil
			sw.cur = nil
		}
		return
	}
	if err := sw.tw.flush(); err != nil {
		sw.fail(err)
		sw.f.Close()
		sw.cur = nil
		return
	}
	sw.cur.payload = sw.pw.n
	sw.cur.crc = sw.pw.crc.Sum32()
	var fixed [12]byte
	binary.LittleEndian.PutUint64(fixed[:8], uint64(sw.cur.payload))
	binary.LittleEndian.PutUint32(fixed[8:], sw.cur.crc)
	if _, err := sw.f.WriteAt(fixed[:], int64(segFixedOff)); err != nil {
		sw.fail(fmt.Errorf("extmem: %w", err))
	} else if err := sw.f.Sync(); err != nil {
		// A failed segment fsync is durability-critical: the file may be
		// referenced by the directory about to be committed while its
		// pages were silently dropped (fsyncgate), so it must poison the
		// writer rather than be retried.
		sw.fail(commitFaultf("fsync segment "+sw.cur.file, err))
	}
	if err := sw.f.Close(); err != nil {
		sw.fail(commitFaultf("close segment "+sw.cur.file, err))
	}
	if sw.err == nil {
		sw.written += sw.cur.payload
		sw.emit(sw.cur)
	}
	sw.f, sw.cur, sw.pw = nil, nil, nil
}

// closeV2 encodes and writes the captured segment. Until here nothing
// of this segment exists on disk, so an encode or create failure leaves
// no file to clean up; fsync/close failures are commit faults exactly
// as in the v1 path.
func (sw *segmentSetWriter) closeV2() {
	if sw.cur == nil || sw.err != nil {
		sw.cur = nil
		return
	}
	res, err := sw.enc.encode(sw.raw, sw.compress, sw.root.name, sw.root.key, sw.cap.toks, sw.marks)
	if err != nil {
		sw.fail(err)
		sw.cur = nil
		return
	}
	rec := sw.cur
	for i := range rec.entries {
		rec.entries[i].offset = res.offs[i].off
		rec.entries[i].size = res.offs[i].size
	}
	rec.dataOff = int64(len(res.head))
	rec.payload = res.payload
	rec.crc = res.crc
	rec.stored = int64(len(res.stored))
	rec.storedCRC = res.storedCRC
	rec.dictLen = res.dictLen
	name := fmt.Sprintf("seg-%08d.tok", sw.ar.nextSeg)
	sw.ar.nextSeg++
	rec.file = name
	f, err := sw.ar.fs.Create(filepath.Join(sw.ar.dir, name))
	if err != nil {
		sw.fail(fmt.Errorf("extmem: create segment: %w", err))
		sw.cur = nil
		return
	}
	if sw.onCreate != nil {
		sw.onCreate(name)
	}
	if _, err := f.Write(res.head); err != nil {
		f.Close()
		sw.fail(fmt.Errorf("extmem: %w", err))
		sw.cur = nil
		return
	}
	if _, err := f.Write(res.stored); err != nil {
		f.Close()
		sw.fail(fmt.Errorf("extmem: %w", err))
		sw.cur = nil
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		sw.fail(commitFaultf("fsync segment "+name, err))
		sw.cur = nil
		return
	}
	if err := f.Close(); err != nil {
		sw.fail(commitFaultf("close segment "+name, err))
		sw.cur = nil
		return
	}
	sw.written += rec.payload
	sw.captureIdx(rec, res)
	sw.emit(rec)
	sw.cur = nil
}

// payloadLen returns the (for v2: estimated) payload bytes of the open
// segment, the quantity roll decisions are made on.
func (sw *segmentSetWriter) payloadLen() int64 {
	if sw.format == segFormatV2 {
		return sw.cap.est
	}
	return sw.pw.n
}

// beginChild notes the subtree about to be written; its entry is
// completed by endChild. For raw roots the entry metadata is ignored.
func (sw *segmentSetWriter) beginChild(name string, tag int, key *tkey, timeStr string) {
	if sw.err != nil {
		return
	}
	if sw.cur == nil {
		sw.open()
		if sw.err != nil {
			return
		}
	}
	if sw.format == segFormatV2 {
		sw.markStart = len(sw.cap.toks)
		sw.pending = childEntry{name: name, tag: tag, key: key, timeStr: timeStr}
		return
	}
	if err := sw.tw.flush(); err != nil {
		sw.fail(err)
		return
	}
	sw.pending = childEntry{name: name, tag: tag, key: key, timeStr: timeStr, offset: sw.pw.n}
}

// endChild completes the pending entry and rolls the file when the
// payload passed the target size — unless the caller declared its total
// payload and the remainder would land in a file smaller than minTail.
func (sw *segmentSetWriter) endChild() {
	if sw.err != nil || sw.cur == nil {
		return
	}
	if sw.format == segFormatV2 {
		sw.marks = append(sw.marks, entryMark{start: sw.markStart, end: len(sw.cap.toks)})
		sw.cur.entries = append(sw.cur.entries, sw.pending)
	} else {
		if err := sw.tw.flush(); err != nil {
			sw.fail(err)
			return
		}
		sw.pending.size = sw.pw.n - sw.pending.offset
		sw.cur.entries = append(sw.cur.entries, sw.pending)
	}
	if n := sw.payloadLen(); n >= sw.target {
		if sw.planned > 0 && sw.planned-(sw.written+n) < sw.minTail {
			return // absorb the tail instead of rolling a tiny file
		}
		sw.closeCurrent()
	}
}

// finish closes any open file and releases the token writer buffer.
func (sw *segmentSetWriter) finish() error {
	sw.closeCurrent()
	sw.tw.release()
	return sw.err
}

// ---------------------------------------------------------------------------
// Reading: the concatenated archive stream and per-entry sections

// streamPart is one piece of a dirStream: either literal bytes
// (synthesized tokens) or a byte range of a segment payload, in
// uncompressed payload space.
type streamPart struct {
	data []byte
	seg  *segmentRecord
	off  int64
	n    int64
}

// dirStream serves the segmented archive as a sequence of token-aligned
// parts — logically the same contiguous stream the monolithic
// archive.tok held, but handed out part by part so the token reader can
// switch each part's segment dictionary (and decoding grammar) in. At
// most one segment file is open at a time; the bytes actually read from
// disk (compressed bytes for compressed segments) are counted into the
// archiver's telemetry.
type dirStream struct {
	fs      fsio.FS
	dir     string
	parts   []streamPart
	dicts   *dictCache // resolves v2 segment dictionaries; may be nil for pure-v1 streams
	i       int
	f       fsio.File
	counter *atomic.Int64

	lit bytes.Reader
	cnt countReader
	sec partReader
	blk blockReader
}

// partReader serves one uncompressed section of an open segment file,
// turning a premature end of file into an explicit truncation error.
type partReader struct {
	f   fsio.File
	rem int64
	c   *atomic.Int64
}

func (pr *partReader) Read(p []byte) (int, error) {
	if pr.rem <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > pr.rem {
		p = p[:pr.rem]
	}
	n, err := pr.f.Read(p)
	pr.rem -= int64(n)
	if pr.c != nil && n > 0 {
		pr.c.Add(int64(n))
	}
	if err == io.EOF && pr.rem > 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// nextPart closes the current part and opens the next, returning its
// reader and segment dictionary (nil for literal and v1 parts). A nil
// reader with nil error means the stream is exhausted.
func (s *dirStream) nextPart() (io.Reader, *segDict, error) {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	if s.i >= len(s.parts) {
		return nil, nil, nil
	}
	part := &s.parts[s.i]
	s.i++
	if part.seg == nil {
		s.lit.Reset(part.data)
		s.cnt = countReader{r: &s.lit, c: s.counter}
		return &s.cnt, nil, nil
	}
	seg := part.seg
	f, err := s.openPart(filepath.Join(s.dir, seg.file))
	if err != nil {
		return nil, nil, fmt.Errorf("extmem: %w", err)
	}
	s.f = f
	var dict *segDict
	if seg.format == segFormatV2 {
		if s.dicts == nil {
			f.Close()
			s.f = nil
			return nil, nil, fmt.Errorf("extmem: no dictionary cache for v2 segment %s", seg.file)
		}
		dict, err = s.dicts.get(seg)
		if err != nil {
			f.Close()
			s.f = nil
			return nil, nil, err
		}
		if dict.blockLen > 0 {
			s.blk.reset(f, dict, part.off, part.n, s.counter)
			return &s.blk, dict, nil
		}
	}
	if _, err := f.Seek(seg.dataOff+part.off, io.SeekStart); err != nil {
		f.Close()
		s.f = nil
		return nil, nil, fmt.Errorf("extmem: %w", err)
	}
	s.sec = partReader{f: f, rem: part.n, c: s.counter}
	return &s.sec, dict, nil
}

// openPart opens one segment file through the stream's FS; a stream
// built without one (tests, ad-hoc scans) falls back to the plain OS.
func (s *dirStream) openPart(path string) (fsio.File, error) {
	fs := s.fs
	if fs == nil {
		fs = fsio.OS
	}
	return fs.Open(path)
}

// Close releases the stream's open file, if any.
func (s *dirStream) Close() error {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	s.i = len(s.parts)
	return nil
}

// synthRootPrefix renders the open token (with key and timestamp) and
// attribute tokens of a non-raw root, exactly as the monolithic merge
// used to write them.
func synthRootPrefix(r *rootRecord) []byte {
	var b bytes.Buffer
	tw := newTokenWriter(&b)
	tw.open(r.tag, r.key, r.timeStr)
	for _, a := range r.attrs {
		tw.attr(a.tag, a.value)
	}
	tw.flush()
	tw.release()
	return b.Bytes()
}

// archiveParts lays out the whole archive as stream parts.
func archiveParts(d *keyDirectory) []streamPart {
	var parts []streamPart
	for _, r := range d.roots {
		parts = append(parts, rootParts(r)...)
	}
	return parts
}

// rootParts lays out one root subtree as stream parts. Offsets are in
// payload space; the stream resolves them to file offsets (or block
// coordinates) per segment format.
func rootParts(r *rootRecord) []streamPart {
	var parts []streamPart
	if r.raw {
		for _, s := range r.segs {
			parts = append(parts, streamPart{seg: s, off: 0, n: s.payload})
		}
		return parts
	}
	parts = append(parts, streamPart{data: synthRootPrefix(r)})
	for _, s := range r.segs {
		parts = append(parts, streamPart{seg: s, off: 0, n: s.payload})
	}
	parts = append(parts, streamPart{data: []byte{tokClose}})
	return parts
}

// entryParts lays out one second-level subtree as stream parts.
func entryParts(s *segmentRecord, e *childEntry) []streamPart {
	return []streamPart{{seg: s, off: e.offset, n: e.size}}
}
