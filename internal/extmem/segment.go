package extmem

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"path/filepath"
	"sync/atomic"

	"xarch/internal/fsio"
)

// Segment files hold the archive body. Each file starts with a versioned
// header (magic, format, flags, payload length, payload CRC32, and the
// owning root's immutable label) followed by the payload: a contiguous
// run of second-level subtree token streams, or — for a raw root — a
// verbatim slice of the root's whole subtree. The root label in the
// header lets a directory rebuild cross-check that each file meta.txt
// lists really belongs to the root it is listed under.
//
// Segment files are never modified in place: rewrites produce fresh
// files (monotonic ids) and the key directory rename is the commit
// point, so a crash leaves either layout intact and at worst some
// orphan files, which Open garbage-collects.

const (
	segMagic  = "XSG1"
	segFormat = 1
)

const segFlagRaw = 0x01

// segmentHeader is the decoded fixed+variable header of one segment file.
type segmentHeader struct {
	raw      bool
	payload  int64
	crc      uint32
	rootName string
	rootKey  *tkey
	dataOff  int64
}

// encodeSegmentHeader renders the header; the payload length and CRC may
// be placeholders to be patched by patchSegmentHeader.
func encodeSegmentHeader(h *segmentHeader) []byte {
	var w kdWriter
	w.b.WriteString(segMagic)
	w.b.WriteByte(segFormat)
	var flags byte
	if h.raw {
		flags |= segFlagRaw
	}
	w.b.WriteByte(flags)
	var fixed [12]byte
	binary.LittleEndian.PutUint64(fixed[:8], uint64(h.payload))
	binary.LittleEndian.PutUint32(fixed[8:], h.crc)
	w.b.Write(fixed[:])
	w.str(h.rootName)
	w.key(h.rootKey)
	return w.b.Bytes()
}

// fixedOff is the offset of the payload-length/CRC fields in the header.
const segFixedOff = len(segMagic) + 2

// readSegmentHeader parses the header at the start of f. The variable
// tail (the root label) is read through a position-tracking reader, so
// arbitrarily large root keys parse back exactly as written.
func readSegmentHeader(f io.ReadSeeker) (*segmentHeader, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("extmem: %w", err)
	}
	fixed := make([]byte, segFixedOff+12)
	if _, err := io.ReadFull(f, fixed); err != nil {
		return nil, fmt.Errorf("extmem: not a segment file: %w", err)
	}
	if string(fixed[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("extmem: not a segment file")
	}
	if fixed[len(segMagic)] != segFormat {
		return nil, fmt.Errorf("extmem: segment format %d not supported", fixed[len(segMagic)])
	}
	h := &segmentHeader{raw: fixed[len(segMagic)+1]&segFlagRaw != 0}
	h.payload = int64(binary.LittleEndian.Uint64(fixed[segFixedOff : segFixedOff+8]))
	h.crc = binary.LittleEndian.Uint32(fixed[segFixedOff+8 : segFixedOff+12])
	pr := &posReader{br: bufio.NewReaderSize(f, 4096)}
	var err error
	if h.rootName, err = pr.str(); err != nil {
		return nil, fmt.Errorf("extmem: segment header: %w", err)
	}
	hasKey, err := pr.byte()
	if err != nil {
		return nil, fmt.Errorf("extmem: segment header: %w", err)
	}
	if hasKey != 0 {
		k := &tkey{}
		n, err := pr.varint()
		if err != nil {
			return nil, fmt.Errorf("extmem: segment header: %w", err)
		}
		for i := uint64(0); i < n; i++ {
			kp, err := pr.str()
			if err != nil {
				return nil, fmt.Errorf("extmem: segment header: %w", err)
			}
			kc, err := pr.str()
			if err != nil {
				return nil, fmt.Errorf("extmem: segment header: %w", err)
			}
			k.paths = append(k.paths, kp)
			k.canon = append(k.canon, kc)
		}
		h.rootKey = k
	}
	h.dataOff = int64(len(fixed)) + pr.pos
	return h, nil
}

// verifySegment recomputes the payload CRC of a segment file against its
// header and the directory record.
func verifySegment(fs fsio.FS, path string, sr *segmentRecord) error {
	f, err := fs.Open(path)
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	defer f.Close()
	h, err := readSegmentHeader(f)
	if err != nil {
		return err
	}
	if h.payload != sr.payload || h.crc != sr.crc || h.dataOff != sr.dataOff {
		return fmt.Errorf("extmem: segment %s header disagrees with directory", sr.file)
	}
	crc := crc32.NewIEEE()
	if _, err := f.Seek(h.dataOff, io.SeekStart); err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	if _, err := io.CopyN(crc, f, h.payload); err != nil {
		return fmt.Errorf("extmem: segment %s truncated: %w", sr.file, err)
	}
	if crc.Sum32() != sr.crc {
		return fmt.Errorf("extmem: segment %s payload checksum mismatch", sr.file)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Segment writing

// segPayloadWriter counts and checksums the payload bytes of one segment
// file as they pass through to disk.
type segPayloadWriter struct {
	f   fsio.File
	crc hash.Hash32
	n   int64
}

func (w *segPayloadWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	if n > 0 {
		w.crc.Write(p[:n])
		w.n += int64(n)
	}
	return n, err
}

// segmentSetWriter streams merged subtrees into a sequence of segment
// files, rolling to a fresh file whenever the current payload passes the
// target size at a child boundary, and recording one directory entry per
// child. The embedded tokenWriter is stable across rolls, so a merge can
// keep one output handle for the whole pass.
//
// When the caller knows the total payload it will write (the compactor
// does), planned/minTail arm tail absorption: a roll is suppressed when
// the bytes still to come would leave a final file smaller than minTail,
// so repacking can never end in a fresh undersized tail.
type segmentSetWriter struct {
	ar     *Archiver
	root   *rootRecord
	raw    bool
	target int64

	planned int64 // total payload the caller will write; 0 = unknown
	minTail int64 // smallest acceptable final file under planned
	written int64 // payload completed in already-closed files

	tw   *tokenWriter
	cur  *segmentRecord
	pw   *segPayloadWriter
	f    fsio.File
	head int64 // header length of the current file

	pending  childEntry
	emit     func(*segmentRecord)
	onCreate func(name string)
	err      error
}

// newSegmentSetWriter returns a writer emitting completed segment
// records through emit (in output order, so reused segments can be
// interleaved by the caller). onCreate fires as soon as a file exists on
// disk — before it is complete — so failed merges can remove every file
// they created, not only the finished ones.
func newSegmentSetWriter(ar *Archiver, root *rootRecord, raw bool, emit func(*segmentRecord), onCreate func(name string)) *segmentSetWriter {
	return &segmentSetWriter{
		ar: ar, root: root, raw: raw, target: int64(ar.cfg.SegmentTarget),
		tw: newTokenWriter(io.Discard), emit: emit, onCreate: onCreate,
	}
}

func (sw *segmentSetWriter) fail(err error) {
	if sw.err == nil {
		sw.err = err
	}
}

// open starts a fresh segment file.
func (sw *segmentSetWriter) open() {
	if sw.err != nil {
		return
	}
	name := fmt.Sprintf("seg-%08d.tok", sw.ar.nextSeg)
	sw.ar.nextSeg++
	f, err := sw.ar.fs.Create(filepath.Join(sw.ar.dir, name))
	if err != nil {
		sw.fail(fmt.Errorf("extmem: create segment: %w", err))
		return
	}
	if sw.onCreate != nil {
		sw.onCreate(name)
	}
	head := encodeSegmentHeader(&segmentHeader{raw: sw.raw, rootName: sw.root.name, rootKey: sw.root.key})
	if _, err := f.Write(head); err != nil {
		f.Close()
		sw.fail(fmt.Errorf("extmem: %w", err))
		return
	}
	sw.f = f
	sw.head = int64(len(head))
	sw.pw = &segPayloadWriter{f: f, crc: crc32.NewIEEE()}
	sw.cur = &segmentRecord{file: name, dataOff: sw.head}
	sw.tw.w.Reset(sw.pw)
}

// closeCurrent finishes the open segment file, patching the header with
// the payload length and CRC, fsyncing, and emitting its record.
func (sw *segmentSetWriter) closeCurrent() {
	if sw.cur == nil || sw.err != nil {
		if sw.cur != nil && sw.err != nil && sw.f != nil {
			sw.f.Close()
			sw.f = nil
			sw.cur = nil
		}
		return
	}
	if err := sw.tw.flush(); err != nil {
		sw.fail(err)
		sw.f.Close()
		sw.cur = nil
		return
	}
	sw.cur.payload = sw.pw.n
	sw.cur.crc = sw.pw.crc.Sum32()
	var fixed [12]byte
	binary.LittleEndian.PutUint64(fixed[:8], uint64(sw.cur.payload))
	binary.LittleEndian.PutUint32(fixed[8:], sw.cur.crc)
	if _, err := sw.f.WriteAt(fixed[:], int64(segFixedOff)); err != nil {
		sw.fail(fmt.Errorf("extmem: %w", err))
	} else if err := sw.f.Sync(); err != nil {
		// A failed segment fsync is durability-critical: the file may be
		// referenced by the directory about to be committed while its
		// pages were silently dropped (fsyncgate), so it must poison the
		// writer rather than be retried.
		sw.fail(commitFaultf("fsync segment "+sw.cur.file, err))
	}
	if err := sw.f.Close(); err != nil {
		sw.fail(commitFaultf("close segment "+sw.cur.file, err))
	}
	if sw.err == nil {
		sw.written += sw.cur.payload
		sw.emit(sw.cur)
	}
	sw.f, sw.cur, sw.pw = nil, nil, nil
}

// beginChild notes the subtree about to be written; its entry is
// completed by endChild. For raw roots the entry metadata is ignored.
func (sw *segmentSetWriter) beginChild(name string, tag int, key *tkey, timeStr string) {
	if sw.err != nil {
		return
	}
	if sw.cur == nil {
		sw.open()
		if sw.err != nil {
			return
		}
	}
	if err := sw.tw.flush(); err != nil {
		sw.fail(err)
		return
	}
	sw.pending = childEntry{name: name, tag: tag, key: key, timeStr: timeStr, offset: sw.pw.n}
}

// endChild completes the pending entry and rolls the file when the
// payload passed the target size — unless the caller declared its total
// payload and the remainder would land in a file smaller than minTail.
func (sw *segmentSetWriter) endChild() {
	if sw.err != nil || sw.cur == nil {
		return
	}
	if err := sw.tw.flush(); err != nil {
		sw.fail(err)
		return
	}
	sw.pending.size = sw.pw.n - sw.pending.offset
	sw.cur.entries = append(sw.cur.entries, sw.pending)
	if sw.pw.n >= sw.target {
		if sw.planned > 0 && sw.planned-(sw.written+sw.pw.n) < sw.minTail {
			return // absorb the tail instead of rolling a tiny file
		}
		sw.closeCurrent()
	}
}

// finish closes any open file and releases the token writer buffer.
func (sw *segmentSetWriter) finish() error {
	sw.closeCurrent()
	sw.tw.release()
	return sw.err
}

// ---------------------------------------------------------------------------
// Reading: the concatenated archive stream and per-entry sections

// streamPart is one piece of a dirStream: either literal bytes
// (synthesized tokens) or a section of a segment file.
type streamPart struct {
	data []byte
	file string
	off  int64
	n    int64
}

// dirStream reads the segmented archive as one contiguous token stream —
// byte-identical to the former monolithic archive.tok — opening at most
// one segment file at a time. Reads are counted into the archiver's
// bytes-read telemetry.
type dirStream struct {
	fs      fsio.FS
	dir     string
	parts   []streamPart
	i       int
	f       fsio.File
	rem     int64
	buf     *bytes.Reader
	counter *atomic.Int64
}

func (s *dirStream) Read(p []byte) (int, error) {
	for {
		if s.buf != nil {
			if s.buf.Len() > 0 {
				n, _ := s.buf.Read(p)
				if s.counter != nil {
					s.counter.Add(int64(n))
				}
				return n, nil
			}
			s.buf = nil
		}
		if s.f != nil {
			if s.rem > 0 {
				if int64(len(p)) > s.rem {
					p = p[:s.rem]
				}
				n, err := s.f.Read(p)
				s.rem -= int64(n)
				if s.counter != nil && n > 0 {
					s.counter.Add(int64(n))
				}
				if n > 0 {
					return n, nil
				}
				if err != nil {
					s.f.Close()
					s.f = nil
					if err == io.EOF {
						err = io.ErrUnexpectedEOF
					}
					return 0, err
				}
				continue
			}
			s.f.Close()
			s.f = nil
		}
		if s.i >= len(s.parts) {
			return 0, io.EOF
		}
		part := s.parts[s.i]
		s.i++
		if part.data != nil {
			s.buf = bytes.NewReader(part.data)
			continue
		}
		f, err := s.openPart(filepath.Join(s.dir, part.file))
		if err != nil {
			return 0, fmt.Errorf("extmem: %w", err)
		}
		if _, err := f.Seek(part.off, io.SeekStart); err != nil {
			f.Close()
			return 0, fmt.Errorf("extmem: %w", err)
		}
		s.f = f
		s.rem = part.n
	}
}

// openPart opens one segment file through the stream's FS; a stream
// built without one (tests, ad-hoc scans) falls back to the plain OS.
func (s *dirStream) openPart(path string) (fsio.File, error) {
	fs := s.fs
	if fs == nil {
		fs = fsio.OS
	}
	return fs.Open(path)
}

// Close releases the stream's open file, if any.
func (s *dirStream) Close() error {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	s.i = len(s.parts)
	s.buf = nil
	return nil
}

// synthRootPrefix renders the open token (with key and timestamp) and
// attribute tokens of a non-raw root, exactly as the monolithic merge
// used to write them.
func synthRootPrefix(r *rootRecord) []byte {
	var b bytes.Buffer
	tw := newTokenWriter(&b)
	tw.open(r.tag, r.key, r.timeStr)
	for _, a := range r.attrs {
		tw.attr(a.tag, a.value)
	}
	tw.flush()
	tw.release()
	return b.Bytes()
}

// archiveParts lays out the whole archive as stream parts.
func archiveParts(d *keyDirectory) []streamPart {
	var parts []streamPart
	for _, r := range d.roots {
		parts = append(parts, rootParts(r)...)
	}
	return parts
}

// rootParts lays out one root subtree as stream parts.
func rootParts(r *rootRecord) []streamPart {
	var parts []streamPart
	if r.raw {
		for _, s := range r.segs {
			parts = append(parts, streamPart{file: s.file, off: s.dataOff, n: s.payload})
		}
		return parts
	}
	parts = append(parts, streamPart{data: synthRootPrefix(r)})
	for _, s := range r.segs {
		parts = append(parts, streamPart{file: s.file, off: s.dataOff, n: s.payload})
	}
	parts = append(parts, streamPart{data: []byte{tokClose}})
	return parts
}

// entryParts lays out one second-level subtree as stream parts.
func entryParts(s *segmentRecord, e *childEntry) []streamPart {
	return []streamPart{{file: s.file, off: s.dataOff + e.offset, n: e.size}}
}
