package extmem

import (
	"bytes"
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"strings"

	"xarch/internal/fsio"
	"xarch/internal/intervals"
	"xarch/internal/keys"
)

// Offline verification and repair. CheckArchive inspects an archive
// directory without mutating anything: metadata decode and checksum,
// per-segment payload CRCs, cross-references between the key directory
// and what is actually on disk, and crash leftovers (orphan segments,
// transient files, a DEGRADED marker). RepairArchive reuses the open
// path's recovery machinery — keydir rebuild from the meta backup,
// meta self-heal, leftover sweep — then clears the marker once the
// directory verifies clean. `xarch fsck` and `xarch inspect -verify`
// are thin wrappers over these.

// CheckItem is one fsck finding about one file (or one consistency
// relation between files).
type CheckItem struct {
	File   string // base name within the archive directory
	Kind   string // keydir | meta | dict | segment | orphan | transient | legacy | marker
	OK     bool   // the item verifies; false items carry a Detail
	Detail string // what is wrong, or a short status for OK items
}

// CheckReport is the result of one offline verification pass.
type CheckReport struct {
	Items    []CheckItem
	Versions int // committed version count per the best available directory
	// Clean reports that every check passed and nothing is left to
	// repair: metadata decodes with valid checksums, every referenced
	// segment verifies, and no crash leftovers (orphans, transient
	// files, a degraded marker) are present.
	Clean bool
}

// Problems returns the non-OK items.
func (r *CheckReport) Problems() []CheckItem {
	var out []CheckItem
	for _, it := range r.Items {
		if !it.OK {
			out = append(out, it)
		}
	}
	return out
}

func (r *CheckReport) add(file, kind string, ok bool, detail string) {
	r.Items = append(r.Items, CheckItem{File: file, Kind: kind, OK: ok, Detail: detail})
	if !ok {
		r.Clean = false
	}
}

// CheckArchive verifies the archive directory without opening it for
// writing and without mutating any file. It reports per-file status
// rather than failing on the first problem; the returned error is
// reserved for not being able to inspect the directory at all.
func CheckArchive(fs fsio.FS, dir string) (*CheckReport, error) {
	if fs == nil {
		fs = fsio.OS
	}
	r := &CheckReport{Clean: true}
	if _, err := fs.Stat(dir); err != nil {
		return nil, fmt.Errorf("extmem: fsck: %w", err)
	}

	// Dictionary: segment payloads reference names by id, so a dead
	// dictionary makes every deeper check impossible.
	var dict *dictionary
	if df, err := fs.Open(filepath.Join(dir, dictFile)); err != nil {
		r.add(dictFile, "dict", false, fmt.Sprintf("unreadable: %v", err))
	} else {
		dict, err = loadDictionary(df)
		df.Close()
		if err != nil {
			dict = nil
			r.add(dictFile, "dict", false, fmt.Sprintf("corrupt: %v", err))
		} else {
			r.add(dictFile, "dict", true, "loads")
		}
	}

	// Key directory: authoritative when its whole-file checksum holds.
	var d *keyDirectory
	kdData, kdErr := fs.ReadFile(filepath.Join(dir, keydirFile))
	switch {
	case errors.Is(kdErr, iofs.ErrNotExist):
		r.add(keydirFile, "keydir", false, "missing (rebuilt from meta.txt on open)")
	case kdErr != nil:
		r.add(keydirFile, "keydir", false, fmt.Sprintf("unreadable: %v", kdErr))
	default:
		var err error
		if d, err = decodeKeyDirectory(kdData); err != nil {
			r.add(keydirFile, "keydir", false, fmt.Sprintf("%v (rebuilt from meta.txt on open)", err))
		} else {
			r.add(keydirFile, "keydir", true, "checksum valid")
		}
	}

	// Meta backup: the recovery source when the key directory is dead,
	// a consistency cross-check when it is not.
	var meta *keyDirectory
	metaData, metaErr := fs.ReadFile(filepath.Join(dir, metaFile))
	switch {
	case errors.Is(metaErr, iofs.ErrNotExist):
		r.add(metaFile, "meta", false, "missing (rewritten from keydir.idx on open)")
	case metaErr != nil:
		r.add(metaFile, "meta", false, fmt.Sprintf("unreadable: %v", metaErr))
	case !strings.HasPrefix(string(metaData), "xarch-ext "):
		r.add(metaFile, "meta", d == nil, "legacy v1 meta (migrated on open)")
	default:
		var err error
		if meta, err = parseMetaV2(bytes.NewReader(metaData)); err != nil {
			meta = nil
			r.add(metaFile, "meta", false, fmt.Sprintf("corrupt backup: %v", err))
		} else if d != nil && !metaMatches(metaData, d) {
			r.add(metaFile, "meta", false, "stale backup, disagrees with keydir.idx (self-healed on open)")
		} else {
			r.add(metaFile, "meta", true, "parses")
		}
	}

	// Segments. With a live key directory, verify every referenced file
	// against its directory record; otherwise fall back to the meta
	// backup's file list, checking each segment against its own header
	// (the rebuild path's ingredients).
	live := map[string]bool{}
	switch {
	case d != nil:
		r.Versions = d.versions
		for _, root := range d.roots {
			for _, seg := range root.segs {
				live[seg.file] = true
				// For format-2 segments verifySegment also decodes the
				// dictionary and walks every token, so a dangling
				// dictionary id fails here like a bad checksum.
				detail := "payload checksum valid"
				if seg.format == segFormatV2 {
					detail = "payload checksum and dictionary ids valid"
				}
				if err := verifySegment(fs, filepath.Join(dir, seg.file), seg); err != nil {
					r.add(seg.file, "segment", false, err.Error())
				} else {
					r.add(seg.file, "segment", true, detail)
				}
			}
		}
	case meta != nil:
		r.Versions = meta.versions
		for _, root := range meta.roots {
			for _, seg := range root.segs {
				live[seg.file] = true
				if dict == nil {
					r.add(seg.file, "segment", false, "unverifiable: dictionary unavailable")
					continue
				}
				if _, _, _, err := scanSegment(fs, filepath.Join(dir, seg.file), dict); err != nil {
					r.add(seg.file, "segment", false, err.Error())
				} else {
					r.add(seg.file, "segment", true, "self-checksum valid")
				}
			}
		}
	}

	// Attribute-index sidecar: advisory, so a missing file is not a
	// finding at all and a stale one (left by a crash between a commit
	// and its sidecar refresh) only warrants a note — queries bypass it
	// and a writable open deletes it. A fresh sidecar, though, must agree
	// with the key directory in every particular it indexes.
	checkAttrIndex(fs, dir, d, r)

	// Crash leftovers on disk: orphan segments no committed state
	// references, transient scratch/rename files, a superseded legacy
	// token file, and the degraded marker. All are removed by repair.
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("extmem: fsck: %w", err)
	}
	for _, e := range ents {
		n := e.Name()
		switch {
		case strings.HasPrefix(n, "tmp-") || strings.HasSuffix(n, ".tmp") || strings.HasSuffix(n, ".part"):
			r.add(n, "transient", false, "crash leftover (swept on open)")
		case strings.HasPrefix(n, "seg-") && strings.HasSuffix(n, ".tok"):
			if (d != nil || meta != nil) && !live[n] {
				r.add(n, "orphan", false, "segment not referenced by any committed state (swept on open)")
			}
		case n == archiveFile:
			if d != nil {
				r.add(n, "legacy", false, "monolithic token file superseded by committed segments (removed on open)")
			} else {
				r.add(n, "legacy", true, "monolithic layout, migrated on open")
			}
		case n == degradedMarker:
			data, _ := fs.ReadFile(filepath.Join(dir, n))
			r.add(n, "marker", false, "writer was degraded: "+strings.TrimSpace(string(data)))
		}
	}
	return r, nil
}

// checkAttrIndex verifies the attr.idx sidecar against the decoded key
// directory: whole-file checksum, binding CRC, coverage of every live
// segment file and raw root, timestamp parseability and containment in
// each record's lifespan, change versions within 1..versions, and kid
// spans within their entry's payload span.
func checkAttrIndex(fs fsio.FS, dir string, d *keyDirectory, r *CheckReport) {
	data, err := fs.ReadFile(filepath.Join(dir, attrIdxFile))
	if errors.Is(err, iofs.ErrNotExist) {
		return
	}
	if err != nil {
		r.add(attrIdxFile, "attridx", false, fmt.Sprintf("unreadable: %v", err))
		return
	}
	x, derr := decodeAttrIndex(data)
	if derr != nil {
		r.add(attrIdxFile, "attridx", false, fmt.Sprintf("%v (deleted and rebuilt on open)", derr))
		return
	}
	if d == nil {
		r.add(attrIdxFile, "attridx", true, "decodes; keydir.idx unavailable for cross-check")
		return
	}
	if x.keydirCRC != d.crc {
		r.add(attrIdxFile, "attridx", true, "stale (advisory: bypassed by queries, deleted on writable open)")
		return
	}
	checkEntry := func(e *idxEntry, eff *intervals.Set, where string) string {
		for _, c := range e.changes {
			if c.explicit && (c.v < 1 || c.v > x.versions) {
				return fmt.Sprintf("%s: change version %d outside 1..%d", where, c.v, x.versions)
			}
		}
		for _, a := range e.attrs {
			if a.timeStr == "" {
				continue
			}
			ts, err := intervals.Parse(a.timeStr)
			if err != nil {
				return fmt.Sprintf("%s: bad attr timestamp %q", where, a.timeStr)
			}
			if !ts.Minus(eff).Empty() {
				return fmt.Sprintf("%s: attr %s lifespan %s outside record lifespan %s", where, a.name, a.timeStr, eff)
			}
		}
		return ""
	}
	if x.versions != d.versions {
		r.add(attrIdxFile, "attridx", false, fmt.Sprintf("version count %d disagrees with key directory %d", x.versions, d.versions))
		return
	}
	for _, rr := range d.roots {
		rootEff := d.rootTime
		if rr.time != nil {
			rootEff = rr.time
		}
		if rr.raw {
			label := keyLabel(rr.name, rr.key)
			ri := x.raws[label]
			if ri == nil {
				r.add(attrIdxFile, "attridx", false, fmt.Sprintf("raw root %s not indexed", label))
				return
			}
			if ri.sig != rawSig(rr) {
				r.add(attrIdxFile, "attridx", false, fmt.Sprintf("raw root %s indexed against different segment bytes", label))
				return
			}
			if msg := checkEntry(ri.e, rootEff, "raw root "+label); msg != "" {
				r.add(attrIdxFile, "attridx", false, msg)
				return
			}
			continue
		}
		for _, s := range rr.segs {
			f := x.files[s.file]
			if f == nil {
				r.add(attrIdxFile, "attridx", false, fmt.Sprintf("segment %s not indexed", s.file))
				return
			}
			if f.crc != s.crc || len(f.entries) != len(s.entries) {
				r.add(attrIdxFile, "attridx", false, fmt.Sprintf("segment %s postings disagree with directory record", s.file))
				return
			}
			for i, e := range f.entries {
				de := &s.entries[i]
				eff := rootEff
				if de.time != nil {
					eff = de.time
				}
				where := fmt.Sprintf("%s entry %s", s.file, keyLabel(de.name, de.key))
				if msg := checkEntry(e, eff, where); msg != "" {
					r.add(attrIdxFile, "attridx", false, msg)
					return
				}
				for _, k := range e.kids {
					if k.off < 0 || k.size < 0 || de.offset+k.off+k.size > s.payload {
						r.add(attrIdxFile, "attridx", false, fmt.Sprintf("%s: kid %s span outside segment payload", where, k.name))
						return
					}
				}
			}
		}
	}
	r.add(attrIdxFile, "attridx", true, "checksum valid, agrees with key directory")
}

// RepairArchive restores an archive directory to a clean state: opening
// it runs the recovery machinery (key directory rebuild from the meta
// backup, meta self-heal, sweep of orphan segments and transient
// files), closing commits the result, and a leftover DEGRADED marker is
// cleared once — and only once — the repaired directory verifies clean.
// It returns the post-repair report.
func RepairArchive(fs fsio.FS, dir string, spec *keys.Spec, cfg Config) (*CheckReport, error) {
	if fs == nil {
		fs = fsio.OS
	}
	cfg.FS = fs
	// Repair also restores the advisory attr.idx sidecar: the open below
	// deletes a stale or corrupt one, and this flag rebuilds it.
	if !cfg.NoAttrIndex {
		cfg.RebuildAttrIndex = true
	}
	ar, err := Open(dir, spec, cfg)
	if err != nil {
		return nil, err
	}
	if err := ar.Close(); err != nil {
		return nil, err
	}
	marker := filepath.Join(dir, degradedMarker)
	hadMarker := false
	if _, err := fs.Stat(marker); err == nil {
		hadMarker = true
	}
	r, err := CheckArchive(fs, dir)
	if err != nil {
		return nil, err
	}
	if hadMarker && len(r.Problems()) == 1 && r.Problems()[0].Kind == "marker" {
		if err := fs.Remove(marker); err != nil {
			return nil, fmt.Errorf("extmem: fsck: clear marker: %w", err)
		}
		return CheckArchive(fs, dir)
	}
	return r, nil
}
