package extmem

import (
	"bufio"
	"fmt"
	"io"

	"xarch/internal/anode"
	"xarch/internal/core"
	"xarch/internal/intervals"
	"xarch/internal/keys"
	"xarch/internal/xmltree"
)

// QueryView is the streaming query engine over the segmented archive: a
// consistent read view taken at open time, answering Version,
// WriteVersion, History, ContentHistory and Stats without ever
// materializing an in-memory archive — peak memory is O(document depth
// + dictionary + one frontier record), independent of how many versions
// the archive holds.
//
// Full scans read the key directory's segments in order, a stream that is
// byte-identical to the former monolithic token file. Selective queries
// resolve keyed selector steps against the in-memory key directory and
// seek straight to the matching subtree, reading O(matched bytes) instead
// of the whole archive.
//
// A view stays valid while later Adds run: it pins the directory
// generation it captured (so its segment files are not deleted
// underneath it) and holds a point-in-time snapshot of the append-only
// dictionary. A QueryView answers one query at a time; open one view per
// concurrent query.
type QueryView struct {
	ar       *Archiver
	d        *keyDirectory
	gen      int
	names    []string
	spec     *keys.Spec
	rootTime *intervals.Set
	versions int
	seek     bool
	aidx     *attrIndex // attribute index bound to d, nil when absent
	cur      *dirStream // the live stream of the current query, if any
}

// OpenQuery opens a consistent read view of the archive. The caller must
// Close it. OpenQuery must not run concurrently with AddVersion (the store
// layer serializes them); the returned view, however, may be used freely
// while later Adds proceed.
func (ar *Archiver) OpenQuery() (*QueryView, error) {
	q := &QueryView{
		ar:       ar,
		d:        ar.curDir,
		gen:      ar.acquireGen(),
		names:    ar.dict.snapshot(),
		spec:     ar.spec,
		rootTime: ar.curDir.rootTime.Clone(),
		versions: ar.curDir.versions,
		seek:     !ar.cfg.NoDirectorySeek,
	}
	if ar.aidx != nil && ar.aidx.keydirCRC == ar.curDir.crc {
		q.aidx = ar.aidx
	}
	return q, nil
}

// Close releases the view: any open segment stream is closed and the
// pinned directory generation is unpinned (letting a superseded
// generation's segment files be deleted).
func (q *QueryView) Close() error {
	if q.cur != nil {
		q.cur.Close()
		q.cur = nil
	}
	if q.ar != nil {
		q.ar.releaseGen(q.gen)
		q.ar = nil
	}
	return nil
}

// Versions returns the number of versions visible in this view.
func (q *QueryView) Versions() int { return q.versions }

func (q *QueryView) name(id int) (string, error) {
	if id < 0 || id >= len(q.names) {
		return "", fmt.Errorf("extmem: tag id %d outside dictionary: %w", id, core.ErrCorruptArchive)
	}
	return q.names[id], nil
}

// stream opens a pooled token reader over the given stream parts,
// closing the previous query's stream if one is still open.
func (q *QueryView) stream(parts []streamPart) *tokenReader {
	if q.cur != nil {
		q.cur.Close()
	}
	q.cur = &dirStream{fs: q.ar.fs, dir: q.ar.dir, parts: parts, dicts: q.ar.segDicts, counter: &q.ar.bytesRead}
	return newDirTokenReader(q.cur)
}

// reader returns a pooled token reader over the whole archive stream —
// byte-identical to the former monolithic token file.
func (q *QueryView) reader() (*tokenReader, error) {
	return q.stream(archiveParts(q.d)), nil
}

// rootEff returns a root's effective timestamp. Decoded directories
// carry the interval set pre-parsed; freshly-built ones fall back to
// parsing the string.
func (q *QueryView) rootEff(r *rootRecord) (*intervals.Set, error) {
	if r.timeStr == "" {
		return q.rootTime, nil
	}
	if r.time != nil {
		return r.time, nil
	}
	ts, err := intervals.Parse(r.timeStr)
	if err != nil {
		return nil, corruptf("bad timestamp %q", r.timeStr)
	}
	return ts, nil
}

// entryEff returns a child entry's effective timestamp under its root's.
func entryEff(e *childEntry, rootEff *intervals.Set) (*intervals.Set, error) {
	if e.timeStr == "" {
		return rootEff, nil
	}
	if e.time != nil {
		return e.time, nil
	}
	ts, err := intervals.Parse(e.timeStr)
	if err != nil {
		return nil, corruptf("bad timestamp %q", e.timeStr)
	}
	return ts, nil
}

func corruptf(format string, args ...any) error {
	args = append(args, core.ErrCorruptArchive)
	return fmt.Errorf("extmem: "+format+": %w", args...)
}

// pooledWriter borrows a pooled buffered writer over w; call done (after
// the final Flush) to return the buffer.
func pooledWriter(w io.Writer) (bw *bufio.Writer, done func()) {
	bw = tokenWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw, func() {
		bw.Reset(io.Discard)
		tokenWriterPool.Put(bw)
	}
}

// skipSubtree consumes tokens until (and including) the close balancing
// an already-consumed open, discarding payloads without decoding them.
func skipSubtree(tr *tokenReader) error {
	if err := tr.discardSubtree(); err != nil {
		return corruptf("%v", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Version retrieval (§7.1, streaming)

// versionSink receives the projection of one version during a scan. Above
// the frontier the projection streams element-by-element; each frontier
// element arrives as one bounded, fully-projected subtree.
type versionSink interface {
	open(name string)
	attr(name, value string)
	subtree(n *xmltree.Node)
	close(name string)
}

// streamVersion projects version v into the sink: dead subtrees are
// skipped, live ones are emitted. Memory is O(depth + one frontier
// record). With the key directory available, top-level children whose
// interval summary excludes v are skipped without reading a single byte
// of them; the output is byte-identical to the full scan.
func (q *QueryView) streamVersion(v int, sink versionSink) error {
	if v < 1 || v > q.versions {
		return fmt.Errorf("extmem: version %d out of range 1..%d: %w", v, q.versions, core.ErrNoSuchVersion)
	}
	if q.seek {
		return q.streamVersionSeek(v, sink)
	}
	return q.streamVersionScan(v, sink)
}

// streamVersionSeek walks the key directory, reading only the subtrees
// alive at v.
func (q *QueryView) streamVersionSeek(v int, sink versionSink) error {
	emitted := false
	for _, r := range q.d.roots {
		eff, err := q.rootEff(r)
		if err != nil {
			return err
		}
		if !eff.Contains(v) {
			continue
		}
		if emitted {
			return fmt.Errorf("extmem: multiple roots at version %d: %w", v, core.ErrCorruptArchive)
		}
		emitted = true
		if r.raw {
			tr := q.stream(rootParts(r))
			t, ok := tr.take()
			if !ok || t.op != tokOpen {
				tr.release()
				return corruptf("raw root %s has no open token", r.name)
			}
			err := q.emitNode(tr, r.name, v, []string{r.name}, sink)
			tr.release()
			if err != nil {
				return err
			}
			continue
		}
		sink.open(r.name)
		for _, a := range r.attrs {
			sink.attr(a.name, a.value)
		}
		for _, s := range r.segs {
			for i := range s.entries {
				e := &s.entries[i]
				ceff, err := entryEff(e, eff)
				if err != nil {
					return err
				}
				if !ceff.Contains(v) {
					continue // skipped without any I/O
				}
				tr := q.stream(entryParts(s, e))
				t, ok := tr.take()
				if !ok || t.op != tokOpen {
					tr.release()
					return corruptf("entry %s has no open token", e.name)
				}
				err = q.emitNode(tr, e.name, v, []string{r.name, e.name}, sink)
				tr.release()
				if err != nil {
					return err
				}
			}
		}
		sink.close(r.name)
	}
	return nil
}

// streamVersionScan is the directory-free path: one scan of the whole
// archive stream.
func (q *QueryView) streamVersionScan(v int, sink versionSink) error {
	tr, err := q.reader()
	if err != nil {
		return err
	}
	defer tr.release()
	emitted := false
	segs := make([]string, 0, 16)
	for {
		t, ok := tr.take()
		if !ok {
			break
		}
		if t.op != tokOpen {
			return corruptf("unexpected token %#x at archive root", t.op)
		}
		alive := q.rootTime.Contains(v)
		if t.data != "" {
			ts, err := tokenEff(t)
			if err != nil {
				return corruptf("bad timestamp %q", t.data)
			}
			alive = ts.Contains(v)
		}
		if !alive {
			if err := skipSubtree(tr); err != nil {
				return err
			}
			continue
		}
		if emitted {
			return fmt.Errorf("extmem: multiple roots at version %d: %w", v, core.ErrCorruptArchive)
		}
		emitted = true
		name, err := q.name(t.tag)
		if err != nil {
			return err
		}
		if err := q.emitNode(tr, name, v, append(segs, name), sink); err != nil {
			return err
		}
	}
	return tr.err
}

// emitNode projects the (already-opened) node onto version v.
func (q *QueryView) emitNode(tr *tokenReader, name string, v int, segs []string, sink versionSink) error {
	if q.spec.IsFrontier(keys.Path(segs)) {
		body, err := readFrontierBody(tr)
		if err != nil {
			return err
		}
		el, err := q.projectFrontier(name, body, v)
		if err != nil {
			return err
		}
		sink.subtree(el)
		return nil
	}
	sink.open(name)
	for {
		t, ok := tr.peek()
		if !ok || t.op != tokAttr {
			break
		}
		tr.take()
		an, err := q.name(t.tag)
		if err != nil {
			return err
		}
		sink.attr(an, t.data)
	}
	for {
		t, ok := tr.take()
		if !ok {
			return corruptf("truncated archive at %s", name)
		}
		switch t.op {
		case tokClose:
			sink.close(name)
			return nil
		case tokOpen:
			alive := true
			if t.data != "" {
				ts, err := tokenEff(t)
				if err != nil {
					return corruptf("bad timestamp %q", t.data)
				}
				alive = ts.Contains(v)
			}
			if !alive {
				if err := skipSubtree(tr); err != nil {
					return err
				}
				continue
			}
			cn, err := q.name(t.tag)
			if err != nil {
				return err
			}
			if err := q.emitNode(tr, cn, v, append(segs, cn), sink); err != nil {
				return err
			}
		default:
			return corruptf("unexpected token %#x above the frontier", t.op)
		}
	}
}

// projectFrontier builds the frontier element's value at version v: shared
// content plus the content of every group whose timestamp contains v, in
// stream order (which is the archive's group order).
func (q *QueryView) projectFrontier(name string, body *fbody, v int) (*xmltree.Node, error) {
	el := xmltree.Elem(name)
	if err := q.appendItems(el, body.shared, false); err != nil {
		return nil, err
	}
	for i := range body.groups {
		g := &body.groups[i]
		if g.time.Contains(v) {
			if err := q.appendItems(el, g.tokens, false); err != nil {
				return nil, err
			}
		}
	}
	return el, nil
}

// appendItems converts a balanced token sequence into children (and
// attributes) of el. With attrCarrier, a bare attribute item — one
// outside any nested element — becomes an <_attr n="name">value</_attr>
// wrapper, the archive-XML form of attributes inside timestamp groups
// (XML cannot hold a bare attribute as a child element).
func (q *QueryView) appendItems(el *xmltree.Node, toks []token, attrCarrier bool) error {
	stack := []*xmltree.Node{el}
	for _, t := range toks {
		top := stack[len(stack)-1]
		switch t.op {
		case tokOpen:
			n, err := q.name(t.tag)
			if err != nil {
				return err
			}
			c := xmltree.Elem(n)
			top.Append(c)
			stack = append(stack, c)
		case tokAttr:
			n, err := q.name(t.tag)
			if err != nil {
				return err
			}
			if attrCarrier && len(stack) == 1 {
				w := xmltree.Elem("_attr", xmltree.TextNode(t.data))
				w.SetAttr("n", n)
				top.Append(w)
			} else {
				top.Append(xmltree.AttrNode(n, t.data))
			}
		case tokText:
			top.Append(xmltree.TextNode(t.data))
		case tokClose:
			if len(stack) == 1 {
				return corruptf("unbalanced frontier content")
			}
			stack = stack[:len(stack)-1]
		default:
			return corruptf("unexpected token %#x in frontier content", t.op)
		}
	}
	if len(stack) != 1 {
		return corruptf("unbalanced frontier content")
	}
	return nil
}

// treeSink assembles the projected version as an xmltree document.
type treeSink struct {
	stack []*xmltree.Node
	root  *xmltree.Node
}

func (s *treeSink) place(n *xmltree.Node) {
	if len(s.stack) == 0 {
		s.root = n
	} else {
		s.stack[len(s.stack)-1].Append(n)
	}
}

func (s *treeSink) open(name string) {
	e := xmltree.Elem(name)
	s.place(e)
	s.stack = append(s.stack, e)
}

func (s *treeSink) attr(name, value string) {
	s.stack[len(s.stack)-1].Append(xmltree.AttrNode(name, value))
}

func (s *treeSink) subtree(n *xmltree.Node) { s.place(n) }

func (s *treeSink) close(string) { s.stack = s.stack[:len(s.stack)-1] }

// Version reconstructs version v as a document tree with one scan. It
// returns (nil, nil) when version v was archived as an empty database.
func (q *QueryView) Version(v int) (*xmltree.Node, error) {
	var s treeSink
	if err := q.streamVersion(v, &s); err != nil {
		return nil, err
	}
	return s.root, nil
}

// xmlSink streams the projected version as XML, writing byte-identically
// to xmltree's serializer without holding the version in memory: above the
// frontier only an open-element stack is kept, and each frontier subtree
// is serialized through the shared xmltree writer at its depth.
type xmlSink struct {
	w     *bufio.Writer
	opts  xmltree.WriteOptions
	depth int
	stack []xmlFrame
}

type xmlFrame struct {
	name    string
	started bool
}

// closeStart finishes the enclosing element's start tag before its first
// child is written.
func (s *xmlSink) closeStart() {
	if n := len(s.stack); n > 0 && !s.stack[n-1].started {
		s.w.WriteByte('>')
		if s.opts.Indent {
			s.w.WriteByte('\n')
		}
		s.stack[n-1].started = true
	}
}

func (s *xmlSink) indent() {
	if !s.opts.Indent {
		return
	}
	for i := 0; i < s.depth; i++ {
		s.w.WriteString(s.opts.IndentString)
	}
}

func (s *xmlSink) open(name string) {
	s.closeStart()
	s.indent()
	s.w.WriteByte('<')
	s.w.WriteString(name)
	s.stack = append(s.stack, xmlFrame{name: name})
	s.depth++
}

func (s *xmlSink) attr(name, value string) {
	s.w.WriteByte(' ')
	s.w.WriteString(name)
	s.w.WriteString(`="`)
	xmltree.EscapeAttr(s.w, value)
	s.w.WriteByte('"')
}

func (s *xmlSink) subtree(n *xmltree.Node) {
	s.closeStart()
	n.WriteDepth(s.w, s.opts, s.depth)
}

func (s *xmlSink) close(string) {
	fr := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	s.depth--
	if !fr.started {
		s.w.WriteString("/>")
	} else {
		s.indent()
		s.w.WriteString("</")
		s.w.WriteString(fr.name)
		s.w.WriteByte('>')
	}
	if s.opts.Indent {
		s.w.WriteByte('\n')
	}
}

// WriteVersion streams the XML of version v directly to w — the bytes are
// identical to serializing Version(v), but no version tree is built. An
// empty version writes nothing.
func (q *QueryView) WriteVersion(v int, w io.Writer, opts xmltree.WriteOptions) error {
	if opts.IndentString == "" {
		opts.IndentString = "  "
	}
	bw, done := pooledWriter(w)
	defer done()
	sink := &xmlSink{w: bw, opts: opts}
	if err := q.streamVersion(v, sink); err != nil {
		return err
	}
	return bw.Flush()
}

// ---------------------------------------------------------------------------
// History queries (§7.2, streaming)

// resolved carries the outcome of a selector resolution. err holds
// selector-semantic failures (no match, deeper ambiguity) that are only
// reported once the enclosing level has been scanned to the end — a later
// sibling match turns them into an ambiguity error at this level, exactly
// like the in-memory resolver that checks all siblings before descending.
type resolved struct {
	eff  *intervals.Set
	node *anode.Node // only populated when the caller asked for the body
	err  error
}

// History returns the versions in which the selected element exists,
// resolving the selector with one scan of the token file.
func (q *QueryView) History(selector string) (*intervals.Set, error) {
	steps, err := core.ParseSelector(selector)
	if err != nil {
		return nil, err
	}
	r, err := q.resolveSelector(steps, false)
	if err != nil {
		return nil, err
	}
	return r.eff.Clone(), nil
}

// ContentHistory returns, for a frontier element, the versions at which
// its content changed.
func (q *QueryView) ContentHistory(selector string) ([]int, error) {
	steps, err := core.ParseSelector(selector)
	if err != nil {
		return nil, err
	}
	r, err := q.resolveSelector(steps, true)
	if err != nil {
		return nil, err
	}
	return core.ContentChangeVersions(r.node, r.eff), nil
}

func (q *QueryView) resolveSelector(steps []core.SelectorStep, wantBody bool) (*resolved, error) {
	var res *resolved
	var err error
	if q.seek {
		res, err = q.resolveViaDirectory(steps, wantBody)
	} else {
		res, err = q.resolveViaScan(steps, wantBody)
	}
	if err != nil {
		return nil, err
	}
	if res.err != nil {
		return nil, res.err
	}
	return res, nil
}

// resolveViaScan resolves the selector with one scan of the whole
// archive stream (the directory-free path).
func (q *QueryView) resolveViaScan(steps []core.SelectorStep, wantBody bool) (*resolved, error) {
	tr, err := q.reader()
	if err != nil {
		return nil, err
	}
	defer tr.release()
	segs := make([]string, 0, 16)
	return q.resolveLevel(tr, steps, q.rootTime, "", segs, wantBody)
}

// resolveViaDirectory resolves the top two selector steps against the
// in-memory key directory — no I/O at all — and descends into at most
// one matched subtree by seeking straight to its bytes. Match order,
// ambiguity handling and error texts mirror resolveLevel exactly, so the
// two paths are indistinguishable to callers.
func (q *QueryView) resolveViaDirectory(steps []core.SelectorStep, wantBody bool) (*resolved, error) {
	step := &steps[0]
	stepPath := "/" + step.Tag
	var res *resolved
	var foundLabel string
	ambiguous := false
	for _, r := range q.d.roots {
		if ambiguous || r.name != step.Tag || !entryMatches(step, r.key) {
			continue
		}
		label := keyLabel(r.name, r.key)
		if res != nil {
			res = &resolved{err: core.AmbiguousSelectorError(stepPath, foundLabel, label)}
			ambiguous = true
			continue
		}
		foundLabel = label
		eff, err := q.rootEff(r)
		if err != nil {
			return nil, err
		}
		res, err = q.resolveRoot(r, eff, steps, stepPath, wantBody)
		if err != nil {
			return nil, err
		}
	}
	if res == nil {
		return &resolved{err: core.NoSuchElementError(stepPath)}, nil
	}
	return res, nil
}

// resolveRoot resolves the remaining steps inside a matched root record.
func (q *QueryView) resolveRoot(r *rootRecord, eff *intervals.Set, steps []core.SelectorStep, stepPath string, wantBody bool) (*resolved, error) {
	last := len(steps) == 1
	if r.raw {
		// Frontier root: its body must be read from the segment bytes.
		if last && !wantBody {
			return &resolved{eff: eff}, nil
		}
		tr := q.stream(rootParts(r))
		defer tr.release()
		if t, ok := tr.take(); !ok || t.op != tokOpen {
			return nil, corruptf("raw root %s has no open token", r.name)
		}
		body, err := readFrontierBody(tr)
		if err != nil {
			return nil, err
		}
		node, err := q.bodyToANode(r.name, body)
		if err != nil {
			return nil, err
		}
		if last {
			return &resolved{eff: eff, node: node}, nil
		}
		n, eff2, serr := core.ResolveFrom(node, eff, steps[1:], stepPath)
		if serr != nil {
			return &resolved{err: serr}, nil
		}
		return &resolved{eff: eff2, node: n}, nil
	}
	if last {
		return &resolved{eff: eff, node: &anode.Node{Kind: xmltree.Element, Name: r.name}}, nil
	}
	// Level 2: look the step up in the key directory. The entries are
	// sorted by (name, canonical key) across the root's segments, so the
	// lookup binary-searches instead of walking every entry; the first
	// match is resolved and a second match overrides the outcome with an
	// ambiguity error, exactly like the linear scan it replaces.
	step := &steps[1]
	childPath := stepPath + "/" + step.Tag
	matches := r.lookup(step)
	if len(matches) == 0 {
		return &resolved{err: core.NoSuchElementError(childPath)}, nil
	}
	m := matches[0]
	ceff, err := entryEff(m.e, eff)
	if err != nil {
		return nil, err
	}
	res, err := q.resolveEntry(r, m.seg, m.e, ceff, steps[1:], childPath, wantBody)
	if err != nil {
		return nil, err
	}
	if len(matches) > 1 {
		res = &resolved{err: core.AmbiguousSelectorError(childPath,
			keyLabel(m.e.name, m.e.key), keyLabel(matches[1].e.name, matches[1].e.key))}
	}
	return res, nil
}

// resolveEntry resolves the remaining steps inside one matched child
// entry, reading the child's bytes only when the answer needs them:
// History on a selective two-step selector is answered from the
// directory alone.
func (q *QueryView) resolveEntry(r *rootRecord, s *segmentRecord, e *childEntry, eff *intervals.Set, steps []core.SelectorStep, stepPath string, wantBody bool) (*resolved, error) {
	last := len(steps) == 1
	if last && !wantBody {
		return &resolved{eff: eff}, nil
	}
	frontier := q.spec.IsFrontier(keys.Path([]string{r.name, e.name}))
	if last && !frontier {
		// Above-frontier nodes have no content groups; ContentHistory
		// reports their first version.
		return &resolved{eff: eff, node: &anode.Node{Kind: xmltree.Element, Name: e.name}}, nil
	}
	if !frontier {
		// With a fresh attribute index the entry's direct children carry
		// byte spans: resolve the next step against that mini-index and
		// seek straight to the one matched child subtree, instead of
		// streaming every sibling of the entry.
		if res, ok, err := q.resolveViaKids(r, s, e, eff, steps, stepPath, wantBody); ok || err != nil {
			return res, err
		}
	}
	tr := q.stream(entryParts(s, e))
	defer tr.release()
	if t, ok := tr.take(); !ok || t.op != tokOpen {
		return nil, corruptf("entry %s has no open token", e.name)
	}
	if frontier {
		body, err := readFrontierBody(tr)
		if err != nil {
			return nil, err
		}
		node, err := q.bodyToANode(e.name, body)
		if err != nil {
			return nil, err
		}
		if last {
			return &resolved{eff: eff, node: node}, nil
		}
		n, eff2, serr := core.ResolveFrom(node, eff, steps[1:], stepPath)
		if serr != nil {
			return &resolved{err: serr}, nil
		}
		return &resolved{eff: eff2, node: n}, nil
	}
	drainAttrs(tr)
	sub, err := q.resolveLevel(tr, steps[1:], eff, stepPath, []string{r.name, e.name}, wantBody)
	if err != nil {
		return nil, err
	}
	if t, ok := tr.take(); !ok || t.op != tokClose {
		return nil, corruptf("missing close at %s", stepPath)
	}
	return sub, nil
}

// resolveViaKids resolves steps[1] against the attribute index's kid
// mini-index of the entry, seeking to the single matched child subtree.
// ok=false means no usable index (absent sidecar, scan-built postings
// without spans) and the caller falls back to streaming the entry. Match
// order, ambiguity handling and error texts mirror resolveLevel exactly.
func (q *QueryView) resolveViaKids(r *rootRecord, s *segmentRecord, e *childEntry, eff *intervals.Set, steps []core.SelectorStep, stepPath string, wantBody bool) (*resolved, bool, error) {
	if q.aidx == nil {
		return nil, false, nil
	}
	fi := q.aidx.files[s.file]
	if fi == nil {
		return nil, false, nil
	}
	var ent *idxEntry
	for i := range s.entries {
		if &s.entries[i] == e {
			if i < len(fi.entries) {
				ent = fi.entries[i]
			}
			break
		}
	}
	if ent == nil || !ent.hasKids {
		return nil, false, nil
	}
	step := &steps[1]
	kidPath := stepPath + "/" + step.Tag
	var first *idxKid
	var foundLabel string
	for ki := range ent.kids {
		k := &ent.kids[ki]
		if k.name != step.Tag || !entryMatches(step, k.key) {
			continue
		}
		if first != nil {
			return &resolved{err: core.AmbiguousSelectorError(kidPath, foundLabel, keyLabel(k.name, k.key))}, true, nil
		}
		first = k
		foundLabel = keyLabel(k.name, k.key)
	}
	if first == nil {
		return &resolved{err: core.NoSuchElementError(kidPath)}, true, nil
	}
	keff := eff
	if first.timeStr != "" {
		ts, err := intervals.Parse(first.timeStr)
		if err != nil {
			return nil, false, corruptf("attr index timestamp %q", first.timeStr)
		}
		keff = ts
	}
	tr := q.stream([]streamPart{{seg: s, off: e.offset + first.off, n: first.size}})
	defer tr.release()
	if t, ok := tr.take(); !ok || t.op != tokOpen {
		return nil, false, corruptf("kid %s has no open token", first.name)
	}
	res, err := q.resolveInto(tr, first.name, keff, steps[1:], kidPath, []string{r.name, e.name, first.name}, wantBody)
	if err != nil {
		return nil, false, err
	}
	return res, true, nil
}

// resolveLevel scans the sibling sequence at the cursor (stopping at the
// balancing close, which it does not consume) for elements matching the
// first step. The first match is resolved immediately — the stream cannot
// be revisited — and a second match turns the outcome into an ambiguity
// error. Every selector-semantic outcome, including ambiguity, travels as
// a soft resolved.err: the in-memory resolver checks each level's
// siblings before descending, so an ambiguity at an enclosing level must
// override whatever resolving inside the first match produced, and only
// the outermost still-ambiguous level is reported.
func (q *QueryView) resolveLevel(tr *tokenReader, steps []core.SelectorStep, parentEff *intervals.Set, path string, segs []string, wantBody bool) (*resolved, error) {
	step := &steps[0]
	stepPath := path + "/" + step.Tag
	var res *resolved
	var foundLabel string
	ambiguous := false
	for {
		t, ok := tr.peek()
		if !ok || t.op == tokClose {
			break
		}
		if t.op != tokOpen {
			return nil, corruptf("unexpected token %#x at keyed level", t.op)
		}
		tr.take()
		name, err := q.name(t.tag)
		if err != nil {
			return nil, err
		}
		if ambiguous || name != step.Tag || !step.MatchesKey(keyDisplay(t.key)) {
			if err := skipSubtree(tr); err != nil {
				return nil, err
			}
			continue
		}
		label := keyLabel(name, t.key)
		if res != nil {
			res = &resolved{err: core.AmbiguousSelectorError(stepPath, foundLabel, label)}
			ambiguous = true
			if err := skipSubtree(tr); err != nil {
				return nil, err
			}
			continue
		}
		foundLabel = label
		eff := parentEff
		if t.data != "" {
			ts, err := tokenEff(t)
			if err != nil {
				return nil, corruptf("bad timestamp %q", t.data)
			}
			eff = ts
		}
		res, err = q.resolveInto(tr, name, eff, steps, stepPath, append(segs, name), wantBody)
		if err != nil {
			return nil, err
		}
	}
	if tr.err != nil {
		return nil, tr.err
	}
	if res == nil {
		return &resolved{err: core.NoSuchElementError(stepPath)}, nil
	}
	return res, nil
}

// resolveInto resolves the remaining steps inside the (already-opened)
// matched node and consumes the node's whole subtree.
func (q *QueryView) resolveInto(tr *tokenReader, name string, eff *intervals.Set, steps []core.SelectorStep, stepPath string, segs []string, wantBody bool) (*resolved, error) {
	last := len(steps) == 1
	if q.spec.IsFrontier(keys.Path(segs)) {
		if last && !wantBody {
			if err := skipSubtree(tr); err != nil {
				return nil, err
			}
			return &resolved{eff: eff}, nil
		}
		body, err := readFrontierBody(tr)
		if err != nil {
			return nil, err
		}
		node, err := q.bodyToANode(name, body)
		if err != nil {
			return nil, err
		}
		if last {
			return &resolved{eff: eff, node: node}, nil
		}
		// Selector tails that descend below the frontier resolve over the
		// materialized (record-sized) body with the shared core resolver.
		n, eff2, serr := core.ResolveFrom(node, eff, steps[1:], stepPath)
		if serr != nil {
			return &resolved{err: serr}, nil
		}
		return &resolved{eff: eff2, node: n}, nil
	}
	if last {
		if err := skipSubtree(tr); err != nil {
			return nil, err
		}
		// Above-frontier nodes have no content groups; ContentHistory
		// reports their first version.
		return &resolved{eff: eff, node: &anode.Node{Kind: xmltree.Element, Name: name}}, nil
	}
	drainAttrs(tr)
	sub, err := q.resolveLevel(tr, steps[1:], eff, stepPath, segs, wantBody)
	if err != nil {
		return nil, err
	}
	if t, ok := tr.take(); !ok || t.op != tokClose {
		return nil, corruptf("missing close at %s", stepPath)
	}
	return sub, nil
}

// bodyToANode converts a frontier body into an annotated node carrying the
// same shared-content/group structure the in-memory loader would build.
func (q *QueryView) bodyToANode(name string, body *fbody) (*anode.Node, error) {
	n := &anode.Node{Kind: xmltree.Element, Name: name, Frontier: true}
	shared, err := q.tokensToANodes(body.shared)
	if err != nil {
		return nil, err
	}
	if len(body.groups) == 0 {
		n.SetContentItems(shared)
		return n, nil
	}
	var groups []*anode.Group
	if len(shared) > 0 {
		groups = append(groups, &anode.Group{Content: shared}) // inherited time
	}
	for i := range body.groups {
		g := &body.groups[i]
		items, err := q.tokensToANodes(g.tokens)
		if err != nil {
			return nil, err
		}
		groups = append(groups, &anode.Group{Time: g.time, Content: items})
	}
	n.Groups = groups
	return n, nil
}

// tokensToANodes converts a balanced token sequence into annotated content
// items.
func (q *QueryView) tokensToANodes(toks []token) ([]*anode.Node, error) {
	var items []*anode.Node
	var stack []*anode.Node
	place := func(n *anode.Node) {
		if len(stack) == 0 {
			items = append(items, n)
		} else if top := stack[len(stack)-1]; n.Kind == xmltree.Attr {
			top.Attrs = append(top.Attrs, n)
		} else {
			top.Children = append(top.Children, n)
		}
	}
	for _, t := range toks {
		switch t.op {
		case tokOpen:
			tn, err := q.name(t.tag)
			if err != nil {
				return nil, err
			}
			n := &anode.Node{Kind: xmltree.Element, Name: tn}
			place(n)
			stack = append(stack, n)
		case tokAttr:
			tn, err := q.name(t.tag)
			if err != nil {
				return nil, err
			}
			place(&anode.Node{Kind: xmltree.Attr, Name: tn, Data: t.data})
		case tokText:
			place(&anode.Node{Kind: xmltree.Text, Data: t.data})
		case tokClose:
			if len(stack) == 0 {
				return nil, corruptf("unbalanced frontier content")
			}
			stack = stack[:len(stack)-1]
		default:
			return nil, corruptf("unexpected token %#x in frontier content", t.op)
		}
	}
	if len(stack) != 0 {
		return nil, corruptf("unbalanced frontier content")
	}
	return items, nil
}

// entryMatches evaluates a selector step's predicates against a key
// annotation, deriving display values only for the paths the predicates
// name — semantically identical to SelectorStep.MatchesKey over
// keyDisplay (the randomized seek-vs-scan property test pins this), but
// without materializing a display slice per directory entry.
func entryMatches(step *core.SelectorStep, k *tkey) bool {
	for _, p := range step.Preds {
		ok := false
		if k != nil {
			for i := range k.paths {
				if k.paths[i] == p.Path {
					ok = xmltree.DisplayFromCanonical(k.canon[i]) == p.Value
					break
				}
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// keyDisplay derives the key annotation's path names and display values
// from the canonical forms carried in the token stream, using the same
// derivation the in-memory annotator applies, so selectors match
// identically on both engines.
func keyDisplay(k *tkey) (paths, disp []string) {
	if k == nil {
		return nil, nil
	}
	disp = make([]string, len(k.canon))
	for i, c := range k.canon {
		disp[i] = xmltree.DisplayFromCanonical(c)
	}
	return k.paths, disp
}

// keyLabel renders "emp{fn=John,ln=Doe}" for error messages, matching the
// annotated-node Label format.
func keyLabel(name string, k *tkey) string {
	if k == nil || len(k.paths) == 0 {
		return name
	}
	paths, disp := keyDisplay(k)
	out := name + "{"
	for i := range paths {
		if i > 0 {
			out += ","
		}
		out += paths[i] + "=" + disp[i]
	}
	return out + "}"
}

// ---------------------------------------------------------------------------
// Stats (streaming)

// countWriter counts bytes written through it.
type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

// Stats summarizes the archive's structure with one streaming pass: the
// indented archive emitter runs over a counting writer (yielding the
// serialized XML size) while the structural counters ride along on the
// same token walk — never holding more than a frontier record in memory
// and never scanning the archive twice.
func (q *QueryView) Stats() (core.Stats, error) {
	s := core.Stats{Versions: q.versions, Elements: 1} // the synthetic root
	var cw countWriter
	if err := q.writeArchiveIndented(&cw, &s); err != nil {
		return core.Stats{}, err
	}
	s.XMLBytes = cw.n
	return s, nil
}

// countNodeOpen accumulates the keyed-level counters of one open token.
func countNodeOpen(t token, s *core.Stats) error {
	s.Elements++
	if t.key == nil {
		return nil
	}
	s.KeyedNodes++
	if t.data == "" {
		s.InheritedTimestamps++
		return nil
	}
	ts, err := tokenEff(t)
	if err != nil {
		return corruptf("bad timestamp %q", t.data)
	}
	s.ExplicitTimestamps++
	s.TimestampRuns += ts.RunCount()
	return nil
}

// countFrontierBody accumulates the counters of one frontier body.
func countFrontierBody(body *fbody, s *core.Stats) {
	countToks := func(toks []token) {
		for _, t := range toks {
			switch t.op {
			case tokOpen:
				s.Elements++
			case tokText:
				s.TextNodes++
			case tokAttr:
				s.Attributes++
			}
		}
	}
	countToks(body.shared)
	for i := range body.groups {
		g := &body.groups[i]
		s.Groups++
		s.TimestampRuns += g.time.RunCount()
		countToks(g.tokens)
	}
}

// ---------------------------------------------------------------------------
// Archive XML (paper form, §2/Fig 5)

// WriteArchiveXML streams the archive's XML form to w. With indent, the
// output is byte-identical to the in-memory engine's serialization of the
// same archive — the line-oriented layout the space experiments measure;
// without, the compact single-line form. Both parse back with the
// in-memory loader.
func (q *QueryView) WriteArchiveXML(w io.Writer, indent bool) error {
	if !indent {
		return q.writeArchiveCompact(w)
	}
	return q.writeArchiveIndented(w, nil)
}

// writeArchiveIndented emits the indented archive form; with a non-nil
// stats, the structural counters are accumulated on the same walk (the
// counting emitter behind Stats).
func (q *QueryView) writeArchiveIndented(w io.Writer, stats *core.Stats) error {
	bw, done := pooledWriter(w)
	defer done()
	opts := xmltree.WriteOptions{Indent: true, IndentString: "  "}
	tr, err := q.reader()
	if err != nil {
		return err
	}
	defer tr.release()

	fmt.Fprintf(bw, "<T t=\"%s\">\n", q.rootTime.String())
	if _, ok := tr.peek(); !ok {
		bw.WriteString("  <root/>\n")
	} else {
		bw.WriteString("  <root>\n")
		segs := make([]string, 0, 16)
		for {
			t, ok := tr.take()
			if !ok {
				break
			}
			if t.op != tokOpen {
				return corruptf("unexpected token %#x at archive root", t.op)
			}
			if err := q.writeArchiveNode(tr, t, bw, opts, 2, segs, stats); err != nil {
				return err
			}
		}
		if tr.err != nil {
			return tr.err
		}
		bw.WriteString("  </root>\n")
	}
	bw.WriteString("</T>\n")
	return bw.Flush()
}

// writeArchiveNode emits one keyed-level node (whose open token t has been
// consumed) in the indented archive form.
func (q *QueryView) writeArchiveNode(tr *tokenReader, t token, bw *bufio.Writer, opts xmltree.WriteOptions, depth int, segs []string, stats *core.Stats) error {
	name, err := q.name(t.tag)
	if err != nil {
		return err
	}
	if stats != nil {
		if err := countNodeOpen(t, stats); err != nil {
			return err
		}
	}
	segs = append(segs, name)
	indent := func(d int) {
		for i := 0; i < d; i++ {
			bw.WriteString(opts.IndentString)
		}
	}
	if t.data != "" {
		indent(depth)
		fmt.Fprintf(bw, "<T t=\"%s\">\n", t.data)
		depth++
	}
	if q.spec.IsFrontier(keys.Path(segs)) {
		body, err := readFrontierBody(tr)
		if err != nil {
			return err
		}
		if stats != nil {
			stats.FrontierNodes++
			countFrontierBody(body, stats)
		}
		el, err := q.bodyToArchiveXML(name, body)
		if err != nil {
			return err
		}
		el.WriteDepth(bw, opts, depth)
	} else {
		indent(depth)
		bw.WriteByte('<')
		bw.WriteString(name)
		started := false
		for {
			ct, ok := tr.take()
			if !ok {
				return corruptf("truncated archive at %s", name)
			}
			if ct.op == tokAttr {
				if stats != nil {
					stats.Attributes++
				}
				an, err := q.name(ct.tag)
				if err != nil {
					return err
				}
				bw.WriteByte(' ')
				bw.WriteString(an)
				bw.WriteString(`="`)
				xmltree.EscapeAttr(bw, ct.data)
				bw.WriteByte('"')
				continue
			}
			if ct.op == tokClose {
				if !started {
					bw.WriteString("/>\n")
				} else {
					indent(depth)
					bw.WriteString("</")
					bw.WriteString(name)
					bw.WriteString(">\n")
				}
				break
			}
			if ct.op != tokOpen {
				return corruptf("unexpected token %#x above the frontier", ct.op)
			}
			if !started {
				bw.WriteString(">\n")
				started = true
			}
			if err := q.writeArchiveNode(tr, ct, bw, opts, depth+1, segs, stats); err != nil {
				return err
			}
		}
	}
	if t.data != "" {
		depth--
		indent(depth)
		bw.WriteString("</T>\n")
	}
	return nil
}

// bodyToArchiveXML builds the archive-form XML tree of one frontier node:
// shared content inline, each timestamped group as a <T t="..."> element,
// attribute items inside groups carried by <_attr n="..."> wrappers (the
// same reserved names the in-memory serializer and loader use).
func (q *QueryView) bodyToArchiveXML(name string, body *fbody) (*xmltree.Node, error) {
	el := xmltree.Elem(name)
	if err := q.appendItems(el, body.shared, false); err != nil {
		return nil, err
	}
	for i := range body.groups {
		g := &body.groups[i]
		te := xmltree.Elem("T")
		te.SetAttr("t", g.time.String())
		if err := q.appendItems(te, g.tokens, true); err != nil {
			return nil, err
		}
		el.Append(te)
	}
	return el, nil
}

// writeArchiveCompact is the single-line emitter (the historical snapshot
// form); it works straight off the tokens with no trees at all.
func (q *QueryView) writeArchiveCompact(w io.Writer) error {
	bw, done := pooledWriter(w)
	defer done()
	tr, err := q.reader()
	if err != nil {
		return err
	}
	defer tr.release()
	fmt.Fprintf(bw, `<T t="%s"><root>`, q.rootTime.String())

	type frame struct {
		name    string
		wrapped bool // node wrapped in a <T> element
		started bool // '>' written
	}
	var stack []frame
	closeStart := func() {
		if n := len(stack); n > 0 && !stack[n-1].started {
			bw.WriteByte('>')
			stack[n-1].started = true
		}
	}
	inGroup := false
	for {
		t, ok := tr.take()
		if !ok {
			break
		}
		switch t.op {
		case tokOpen:
			closeStart()
			name, err := q.name(t.tag)
			if err != nil {
				return err
			}
			wrapped := false
			if t.data != "" && !inGroup {
				fmt.Fprintf(bw, `<T t="%s">`, t.data)
				wrapped = true
			}
			bw.WriteByte('<')
			bw.WriteString(name)
			stack = append(stack, frame{name: name, wrapped: wrapped})
		case tokAttr:
			name, err := q.name(t.tag)
			if err != nil {
				return err
			}
			if len(stack) > 0 && !stack[len(stack)-1].started {
				fmt.Fprintf(bw, ` %s="`, name)
				xmltree.EscapeAttr(bw, t.data)
				bw.WriteByte('"')
			} else {
				// An attribute item inside group content after other
				// items: carry it in an <_attr> element.
				bw.WriteString(`<_attr n="`)
				xmltree.EscapeAttr(bw, name)
				bw.WriteString(`">`)
				xmltree.EscapeText(bw, t.data)
				bw.WriteString("</_attr>")
			}
		case tokText:
			closeStart()
			xmltree.EscapeText(bw, t.data)
		case tokClose:
			n := len(stack)
			if n == 0 {
				return corruptf("unbalanced archive tokens")
			}
			fr := stack[n-1]
			stack = stack[:n-1]
			if !fr.started {
				bw.WriteString("/>")
			} else {
				fmt.Fprintf(bw, "</%s>", fr.name)
			}
			if fr.wrapped {
				bw.WriteString("</T>")
			}
		case tokTSOpen:
			closeStart()
			fmt.Fprintf(bw, `<T t="%s">`, t.data)
			inGroup = true
		case tokTSClose:
			bw.WriteString("</T>")
			inGroup = false
		}
	}
	if tr.err != nil {
		return tr.err
	}
	bw.WriteString("</root></T>")
	return bw.Flush()
}
