package extmem

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"xarch/internal/datagen"
	"xarch/internal/fsio"
)

func checkKinds(r *CheckReport) map[string]int {
	kinds := map[string]int{}
	for _, p := range r.Problems() {
		kinds[p.Kind]++
	}
	return kinds
}

func TestFsckCleanArchive(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Budget: 1 << 16, SegmentTarget: 2048}
	ar := buildOMIMArchive(t, dir, cfg, 3)
	if err := ar.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := CheckArchive(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean {
		t.Fatalf("fresh archive not clean: %+v", r.Problems())
	}
	if r.Versions != 3 {
		t.Fatalf("Versions = %d, want 3", r.Versions)
	}
}

func TestFsckDetectsCorruptKeydirAndRepairs(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Budget: 1 << 16, SegmentTarget: 2048}
	ar := buildOMIMArchive(t, dir, cfg, 2)
	want := archiveStreamBytes(t, ar)
	if err := ar.Close(); err != nil {
		t.Fatal(err)
	}

	p := filepath.Join(dir, keydirFile)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := CheckArchive(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean {
		t.Fatal("corrupt keydir not detected")
	}
	if checkKinds(r)["keydir"] == 0 {
		t.Fatalf("no keydir problem in %+v", r.Problems())
	}

	r, err = RepairArchive(nil, dir, datagen.OMIMSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean {
		t.Fatalf("not clean after repair: %+v", r.Problems())
	}
	ar2, err := Open(dir, datagen.OMIMSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ar2.Close()
	if got := archiveStreamBytes(t, ar2); !bytes.Equal(got, want) {
		t.Error("repair did not preserve the archive stream")
	}
}

func TestFsckDetectsCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Budget: 1 << 16, SegmentTarget: 2048}
	ar := buildOMIMArchive(t, dir, cfg, 2)
	segs := ar.globSegments()
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	if err := ar.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-8] ^= 0xff // payload tail: past the header, before EOF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := CheckArchive(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean {
		t.Fatal("corrupt segment not detected")
	}
	if checkKinds(r)["segment"] == 0 {
		t.Fatalf("no segment problem in %+v", r.Problems())
	}
}

func TestFsckDetectsLeftoversAndRepairSweeps(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Budget: 1 << 16, SegmentTarget: 2048}
	ar := buildOMIMArchive(t, dir, cfg, 2)
	if err := ar.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"seg-999999.tok", "tmp-sort-run-0", "keydir.idx.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r, err := CheckArchive(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	kinds := checkKinds(r)
	if kinds["orphan"] != 1 || kinds["transient"] != 2 {
		t.Fatalf("problem kinds %v, want 1 orphan + 2 transient", kinds)
	}
	r, err = RepairArchive(nil, dir, datagen.OMIMSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean {
		t.Fatalf("not clean after repair: %+v", r.Problems())
	}
}

// TestOpenSweepsStagedPartFiles: *.part staging leftovers — an
// interrupted replication pull's half-transferred blobs — are flagged
// by fsck as transients and swept by a plain reopen, exactly like the
// engine's own *.tmp scratch files.
func TestOpenSweepsStagedPartFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Budget: 1 << 16, SegmentTarget: 2048}
	ar := buildOMIMArchive(t, dir, cfg, 2)
	if err := ar.Close(); err != nil {
		t.Fatal(err)
	}
	parts := []string{"seg-00000042.tok.part", "keydir.idx.part"}
	for _, f := range parts {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("half-transferred"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r, err := CheckArchive(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean || checkKinds(r)["transient"] != len(parts) {
		t.Fatalf("stale parts not flagged: clean=%v kinds=%v", r.Clean, checkKinds(r))
	}
	ar, err = Open(dir, datagen.OMIMSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Versions() != 2 {
		t.Fatalf("Versions = %d after reopen, want 2", ar.Versions())
	}
	if err := ar.Close(); err != nil {
		t.Fatal(err)
	}
	for _, f := range parts {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Errorf("%s survived reopen", f)
		}
	}
	if r, err = CheckArchive(nil, dir); err != nil || !r.Clean {
		t.Fatalf("archive not clean after the sweep: %v %+v", err, r.Problems())
	}
}

func TestFsckRepairClearsDegradedMarker(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(nil)
	cfg := Config{Budget: 1 << 16, SegmentTarget: 2048}
	fcfg := cfg
	fcfg.FS = ffs
	ar, err := Open(dir, datagen.OMIMSpec(), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.NewOMIM(datagen.OMIMConfig{Seed: 7, Records: 10})
	if err := ar.AddVersion(strings.NewReader(g.Next().IndentedXML())); err != nil {
		t.Fatal(err)
	}
	ffs.SetFault("keydir.sync", fsio.Fault{Err: syscall.EIO})
	if err := ar.AddVersion(strings.NewReader(g.Next().IndentedXML())); !errors.Is(err, ErrDegraded) {
		t.Fatalf("got %v, want ErrDegraded", err)
	}
	// The process is abandoned degraded; the marker stays behind.
	r, err := CheckArchive(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Clean || checkKinds(r)["marker"] != 1 {
		t.Fatalf("marker not reported: %+v", r.Problems())
	}
	r, err = RepairArchive(nil, dir, datagen.OMIMSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Clean {
		t.Fatalf("not clean after repair: %+v", r.Problems())
	}
	if _, err := os.Stat(filepath.Join(dir, degradedMarker)); err == nil {
		t.Fatal("DEGRADED marker survived repair")
	}
}
