package extmem

import (
	"io"
	"sync"

	"xarch/internal/fsio"
)

// The ingest pipeline overlaps §6.1 (decompose) with §6.2 (run forming):
// decompose streams the incoming XML into the version token file and the
// per-pattern key files, while a worker goroutine follows those same files
// and builds the bounded-memory sorted runs. The worker may have to wait —
// a node's composite key is only written when its subtree closes — but the
// producer side never blocks, so the pipeline cannot deadlock: at worst it
// degrades to the sequential schedule.

// progress tracks how many bytes of a growing file are durably readable,
// and whether the writer has finished (successfully or not).
type progress struct {
	mu      sync.Mutex
	cond    *sync.Cond
	flushed int64
	done    bool
	err     error
}

func newProgress() *progress {
	p := &progress{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// advance records n more durable bytes and wakes any waiting follower.
func (p *progress) advance(n int) {
	p.mu.Lock()
	p.flushed += int64(n)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// finish marks the writer done; err, if non-nil, is surfaced to followers.
func (p *progress) finish(err error) {
	p.mu.Lock()
	p.done = true
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.cond.Broadcast()
}

// wait blocks until more than off bytes are readable or the writer is
// done, returning the current frontier.
func (p *progress) wait(off int64) (flushed int64, done bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.flushed <= off && !p.done {
		p.cond.Wait()
	}
	return p.flushed, p.done, p.err
}

// progressWriter publishes every durable write to a progress tracker.
type progressWriter struct {
	f fsio.File
	p *progress
}

func (w *progressWriter) Write(b []byte) (int, error) {
	n, err := w.f.Write(b)
	if n > 0 {
		w.p.advance(n)
	}
	return n, err
}

// followReader reads a file that is still being written, never reading
// past the writer's published frontier and blocking at it until the
// writer advances or finishes.
type followReader struct {
	f   fsio.File
	p   *progress
	off int64
}

func (r *followReader) Read(b []byte) (int, error) {
	for {
		flushed, done, err := r.p.wait(r.off)
		if r.off < flushed {
			if max := flushed - r.off; int64(len(b)) > max {
				b = b[:max]
			}
			n, rerr := r.f.ReadAt(b, r.off)
			r.off += int64(n)
			if n > 0 {
				return n, nil
			}
			if rerr != nil && rerr != io.EOF {
				return 0, rerr
			}
			continue
		}
		if done {
			if err != nil {
				return 0, err
			}
			return 0, io.EOF
		}
	}
}
