package extmem

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"xarch/internal/datagen"
	"xarch/internal/fsio"
	"xarch/internal/xmltree"
)

// interleavedGrowth emulates a growing curated database (the OMIM shape:
// /ROOT/Record{Num}) whose new records interleave the existing key
// space and then go cold — the workload that fragments the segmented
// layout: each insert splits the segment owning its key range into a
// right-sized file plus a small tail, and with the range never touched
// again the tail is stranded. Repeated small Adds therefore accumulate
// undersized neighbors, which is exactly what compaction exists to
// repair.
type interleavedGrowth struct {
	nums []int
	next int
	base int
}

func newInterleavedGrowth(records int) *interleavedGrowth {
	g := &interleavedGrowth{base: records}
	for k := 0; k < records; k++ {
		g.nums = append(g.nums, 10_000_000+k*1000)
	}
	return g
}

func (g *interleavedGrowth) doc() string {
	sorted := append([]int(nil), g.nums...)
	sort.Ints(sorted)
	var b strings.Builder
	b.WriteString("<ROOT>")
	for _, n := range sorted {
		fmt.Fprintf(&b, "<Record><Num>%08d</Num><Title>record %08d</Title><Text>%s</Text></Record>",
			n, n, strings.Repeat(fmt.Sprintf("body of record %08d. ", n), 55))
	}
	b.WriteString("</ROOT>")
	return b.String()
}

// grow inserts one record into the middle of a fresh (round-robin)
// region of the key space.
func (g *interleavedGrowth) grow() {
	r := g.next
	g.next++
	region := (r * 7) % g.base
	round := r / g.base
	g.nums = append(g.nums, 10_000_000+region*1000+800-round*100)
}

const fragTarget = 4096

// fragmentedArchive builds an archive under the interleaved-growth
// workload: adds small sequential versions until the layout holds
// stranded undersized tails.
func fragmentedArchive(t *testing.T, dir string, cfg Config, adds int) *Archiver {
	t.Helper()
	g := newInterleavedGrowth(100)
	ar, err := Open(dir, datagen.OMIMSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ar.AddVersion(strings.NewReader(g.doc())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < adds; i++ {
		g.grow()
		if err := ar.AddVersion(strings.NewReader(g.doc())); err != nil {
			t.Fatalf("add v%d: %v", i+2, err)
		}
	}
	return ar
}

// diskSegments lists the segment files actually present in dir, reading
// the directory with the plain os package so a crashed FaultFS cannot
// hide what is really on disk.
func diskSegments(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasPrefix(n, "seg-") && strings.HasSuffix(n, ".tok") {
			out = append(out, n)
		}
	}
	return out
}

func segmentFiles(t *testing.T, ar *Archiver) []string {
	t.Helper()
	var out []string
	for f := range ar.curDir.files() {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// TestCompactionCoalesces pins the tentpole claim: Compact merges runs
// of undersized adjacent segments into right-sized files while leaving
// the concatenated archive stream — and every query answer — untouched
// down to the byte.
func TestCompactionCoalesces(t *testing.T) {
	dir := t.TempDir()
	ar := fragmentedArchive(t, dir, Config{Budget: 1 << 16, SegmentTarget: fragTarget}, 30)
	wantStream := archiveStreamBytes(t, ar)
	wantXML := snapshotXML(t, ar)
	before := ar.StorageStats()
	plan := ar.CompactionPlan()
	if len(plan) == 0 {
		t.Fatalf("no coalesce runs planned over %d segments", before.Segments)
	}

	st, err := ar.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != st.Planned || st.Executed != len(plan) {
		t.Errorf("executed %d of %d planned runs (dry-run saw %d)", st.Executed, st.Planned, len(plan))
	}
	if st.Coalesced <= st.Created {
		t.Errorf("compaction did not shrink the layout: %+v", st)
	}
	after := ar.StorageStats()
	if after.Segments >= before.Segments {
		t.Errorf("segments %d -> %d, expected fewer", before.Segments, after.Segments)
	}
	if after.SegmentBytes != before.SegmentBytes {
		t.Errorf("payload bytes changed: %d -> %d", before.SegmentBytes, after.SegmentBytes)
	}
	if got := archiveStreamBytes(t, ar); string(got) != string(wantStream) {
		t.Errorf("archive stream changed under compaction")
	}
	if got := snapshotXML(t, ar); got != wantXML {
		t.Errorf("archive XML changed under compaction")
	}
	if rest := ar.CompactionPlan(); len(rest) != 0 {
		t.Errorf("runs still planned after an unbudgeted pass: %v", rest)
	}
	// The compacted layout survives a reopen.
	if err := ar.Close(); err != nil {
		t.Fatal(err)
	}
	ar2, err := Open(dir, datagen.OMIMSpec(), Config{Budget: 1 << 16, SegmentTarget: fragTarget})
	if err != nil {
		t.Fatal(err)
	}
	defer ar2.Close()
	if got := archiveStreamBytes(t, ar2); string(got) != string(wantStream) {
		t.Errorf("archive stream changed after reopen")
	}
}

// TestOpportunisticCompactionBoundsSegments is the acceptance claim:
// after 50 small sequential Adds on the OMIM-shaped fixture, the
// budgeted post-Add pass keeps the segment-file count within 2x of the
// right-sized layout's count (what one bulk Add of the same stream
// would produce), where the unmaintained archive fragments past the
// maintained one — and the archives stay byte-identical.
func TestOpportunisticCompactionBoundsSegments(t *testing.T) {
	const adds = 50
	plain := t.TempDir()
	arPlain := fragmentedArchive(t, plain, Config{Budget: 1 << 16, SegmentTarget: fragTarget}, adds)
	defer arPlain.Close()
	maintained := t.TempDir()
	arComp := fragmentedArchive(t, maintained,
		Config{Budget: 1 << 16, SegmentTarget: fragTarget, CompactionBudget: 32 * 1024}, adds)
	defer arComp.Close()

	if got, want := archiveStreamBytes(t, arComp), archiveStreamBytes(t, arPlain); string(got) != string(want) {
		t.Fatalf("maintained archive stream differs from unmaintained")
	}
	// The right-sized layout for this content: every root's payload cut
	// at the target — the count a single bulk Add of the same stream
	// would produce.
	ideal := 0
	for _, r := range arComp.curDir.roots {
		var bytes int64
		for _, s := range r.segs {
			bytes += s.payload
		}
		ideal += int(bytes/fragTarget) + 1
	}
	stComp := arComp.StorageStats()
	stPlain := arPlain.StorageStats()
	t.Logf("segments after %d adds: maintained=%d, unmaintained=%d, right-sized=%d",
		adds, stComp.Segments, stPlain.Segments, ideal)
	if stComp.Segments > 2*ideal {
		t.Errorf("maintained archive has %d segments, more than 2x the right-sized %d", stComp.Segments, ideal)
	}
	if stPlain.Segments <= stComp.Segments {
		t.Errorf("unmaintained archive (%d) did not fragment past the maintained one (%d)",
			stPlain.Segments, stComp.Segments)
	}
	if len(arPlain.CompactionPlan()) == 0 {
		t.Errorf("unmaintained archive has no coalesce runs to plan")
	}
	if arComp.CompactErr != nil {
		t.Errorf("opportunistic pass failed: %v", arComp.CompactErr)
	}
}

// TestCompactionBudget: a budgeted pass rewrites no more than the budget
// (beyond the guaranteed first run) and leaves the rest for later
// passes.
func TestCompactionBudget(t *testing.T) {
	dir := t.TempDir()
	ar := fragmentedArchive(t, dir, Config{Budget: 1 << 16, SegmentTarget: fragTarget}, 30)
	defer ar.Close()
	runs := ar.CompactionPlan()
	if len(runs) < 2 {
		t.Fatalf("layout produced only %d coalesce runs", len(runs))
	}
	st, err := ar.compact(1) // smaller than any run: exactly one executes
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != 1 {
		t.Errorf("budgeted pass executed %d runs, want exactly 1", st.Executed)
	}
	if rest := ar.CompactionPlan(); len(rest) != len(runs)-1 {
		t.Errorf("%d runs remain after a one-run pass over %d", len(rest), len(runs))
	}
}

// TestCompactionConvergesWithOversizedThreshold: a threshold configured
// above the segment target is clamped, so compaction still converges (an
// unclamped threshold would mark the coalescer's own right-sized output
// undersized again and replan it forever).
func TestCompactionConvergesWithOversizedThreshold(t *testing.T) {
	dir := t.TempDir()
	ar := fragmentedArchive(t, dir,
		Config{Budget: 1 << 16, SegmentTarget: fragTarget, CompactTarget: 4 * fragTarget}, 20)
	defer ar.Close()
	if got := ar.cfg.CompactTarget; got != fragTarget {
		t.Fatalf("CompactTarget not clamped: %d (target %d)", got, fragTarget)
	}
	if _, err := ar.Compact(); err != nil {
		t.Fatal(err)
	}
	if rest := ar.CompactionPlan(); len(rest) != 0 {
		t.Errorf("compaction did not converge: %d runs still planned", len(rest))
	}
}

// TestCompactionCrashInjection simulates a kill between the compaction's
// segment writes and the key directory commit: on reopen the archive is
// byte-identical with the pre-compaction segment set and the orphan
// files are collected.
func TestCompactionCrashInjection(t *testing.T) {
	dir := t.TempDir()
	ffs := fsio.NewFaultFS(nil)
	ar := fragmentedArchive(t, dir, Config{Budget: 1 << 16, SegmentTarget: fragTarget, FS: ffs}, 30)
	wantStream := archiveStreamBytes(t, ar)
	wantXML := snapshotXML(t, ar)
	wantFiles := segmentFiles(t, ar)
	if len(ar.CompactionPlan()) == 0 {
		t.Fatal("nothing planned; fixture too small")
	}

	// Crash at the first rename of the directory commit: the coalesced
	// segment files are on disk but no committed state points at them —
	// and, because a crashed FaultFS fails the cleanup removes too, they
	// stay there exactly as a real kill would leave them.
	ffs.SetFault("dict.rename", fsio.Fault{Crash: true})
	_, err := ar.Compact()
	if !errors.Is(err, fsio.ErrCrashed) {
		t.Fatalf("Compact under crash fault: %v", err)
	}
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("crashed commit did not degrade the writer: %v", err)
	}

	// The "kill" left freshly written segment files on disk but no
	// directory pointing at them.
	orphans := 0
	live := map[string]bool{}
	for _, f := range wantFiles {
		live[f] = true
	}
	for _, name := range diskSegments(t, dir) {
		if !live[name] {
			orphans++
		}
	}
	if orphans == 0 {
		t.Fatal("crash simulation left no orphan segments; injection point moved?")
	}

	ar2, err := Open(dir, datagen.OMIMSpec(), Config{Budget: 1 << 16, SegmentTarget: fragTarget})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer ar2.Close()
	if got := segmentFiles(t, ar2); fmt.Sprint(got) != fmt.Sprint(wantFiles) {
		t.Errorf("segment set changed across the crash:\n  before: %v\n  after:  %v", wantFiles, got)
	}
	if got := archiveStreamBytes(t, ar2); string(got) != string(wantStream) {
		t.Errorf("archive stream changed across the crash")
	}
	if got := snapshotXML(t, ar2); got != wantXML {
		t.Errorf("archive XML changed across the crash")
	}
	for _, p := range ar2.globSegments() {
		if !live[filepath.Base(p)] {
			t.Errorf("orphan segment %s survived reopen", filepath.Base(p))
		}
	}
	// The recovered archive compacts cleanly.
	if _, err := ar2.Compact(); err != nil {
		t.Fatalf("compact after recovery: %v", err)
	}
	if got := archiveStreamBytes(t, ar2); string(got) != string(wantStream) {
		t.Errorf("archive stream changed in post-recovery compaction")
	}
}

// TestCompactionPinnedViews: query views opened before compaction (and
// before later Adds) never observe a compacted-away segment — they keep
// answering from the generation they pinned, and their segment files
// are swept only once the last view closes.
func TestCompactionPinnedViews(t *testing.T) {
	dir := t.TempDir()
	g := newInterleavedGrowth(100)
	ar, err := Open(dir, datagen.OMIMSpec(), Config{Budget: 1 << 16, SegmentTarget: fragTarget})
	if err != nil {
		t.Fatal(err)
	}
	defer ar.Close()
	if err := ar.AddVersion(strings.NewReader(g.doc())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		g.grow()
		if err := ar.AddVersion(strings.NewReader(g.doc())); err != nil {
			t.Fatal(err)
		}
	}
	q, err := ar.OpenQuery()
	if err != nil {
		t.Fatal(err)
	}
	pinned := map[string]bool{}
	for f := range ar.curDir.files() {
		pinned[f] = true
	}
	var before strings.Builder
	if err := q.WriteVersion(3, &before, xmltree.WriteOptions{Indent: true}); err != nil {
		t.Fatal(err)
	}

	// Churn: compaction passes interleaved with Adds that fragment anew.
	for i := 0; i < 3; i++ {
		if _, err := ar.Compact(); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			g.grow()
		}
		if err := ar.AddVersion(strings.NewReader(g.doc())); err != nil {
			t.Fatal(err)
		}
		// Every file of the pinned generation must still exist.
		for f := range pinned {
			if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
				t.Fatalf("pinned segment %s vanished during churn round %d: %v", f, i, err)
			}
		}
		var now strings.Builder
		if err := q.WriteVersion(3, &now, xmltree.WriteOptions{Indent: true}); err != nil {
			t.Fatalf("pinned view failed during churn round %d: %v", i, err)
		}
		if now.String() != before.String() {
			t.Fatalf("pinned view's answer changed during churn round %d", i)
		}
	}

	q.Close()
	// With the view closed, only the current generation's files remain.
	live := ar.curDir.files()
	for _, p := range ar.globSegments() {
		if !live[filepath.Base(p)] {
			t.Errorf("superseded segment %s not swept after view close", filepath.Base(p))
		}
	}
}

// TestOpportunisticCompactionPreservesQueries: the budgeted post-Add
// pass keeps engine parity — every query answer matches an archive
// built without compaction, including History resolved through the
// (rebuilt) key directory of the compacted layout.
func TestOpportunisticCompactionPreservesQueries(t *testing.T) {
	plain := t.TempDir()
	arPlain := fragmentedArchive(t, plain, Config{Budget: 1 << 16, SegmentTarget: fragTarget}, 20)
	defer arPlain.Close()
	comp := t.TempDir()
	arComp := fragmentedArchive(t, comp,
		Config{Budget: 1 << 16, SegmentTarget: fragTarget, CompactionBudget: 32 * 1024}, 20)
	defer arComp.Close()
	if arComp.CompactErr != nil {
		t.Fatalf("opportunistic pass failed: %v", arComp.CompactErr)
	}
	if got, want := snapshotXML(t, arComp), snapshotXML(t, arPlain); got != want {
		t.Errorf("snapshots diverge under opportunistic compaction")
	}
	qc, err := arComp.OpenQuery()
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	qp, err := arPlain.OpenQuery()
	if err != nil {
		t.Fatal(err)
	}
	defer qp.Close()
	for v := 1; v <= arPlain.Versions(); v += 7 {
		var a, b strings.Builder
		if err := qc.WriteVersion(v, &a, xmltree.WriteOptions{Indent: true}); err != nil {
			t.Fatal(err)
		}
		if err := qp.WriteVersion(v, &b, xmltree.WriteOptions{Indent: true}); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("version %d diverges under opportunistic compaction", v)
		}
	}
	for _, sel := range []string{
		"/ROOT/Record[Num=10000000]",
		"/ROOT/Record[Num=10007800]", // a record inserted mid-growth
		"/ROOT/Record[Num=10099000]",
	} {
		hc, errc := qc.History(sel)
		hp, errp := qp.History(sel)
		if (errc == nil) != (errp == nil) {
			t.Fatalf("History(%s): compacted err %v, plain err %v", sel, errc, errp)
		}
		if errc == nil && !hc.Equal(hp) {
			t.Errorf("History(%s): compacted %q, plain %q", sel, hc, hp)
		}
	}
}
