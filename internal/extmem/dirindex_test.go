package extmem

import (
	"fmt"
	"testing"

	"xarch/internal/core"
)

// mkEntry builds a child entry keyed by one {num} path with canonical
// form t(<v>) (display <v>).
func mkEntry(name, path, val string) childEntry {
	return childEntry{name: name, key: &tkey{paths: []string{path}, canon: []string{"t(" + val + ")"}}}
}

func mkRoot(segSizes []int, entries []childEntry) *rootRecord {
	r := &rootRecord{name: "db"}
	i := 0
	for _, n := range segSizes {
		s := &segmentRecord{entries: entries[i : i+n]}
		r.segs = append(r.segs, s)
		i += n
	}
	if i != len(entries) {
		panic("segSizes do not cover entries")
	}
	return r
}

// refLookup is the pre-index reference: a linear scan over every entry,
// returning the first two matches in physical order.
func refLookup(r *rootRecord, step *core.SelectorStep) []segEntry {
	var out []segEntry
	for _, s := range r.segs {
		for i := range s.entries {
			e := &s.entries[i]
			if len(out) < 2 && e.name == step.Tag && entryMatches(step, e.key) {
				out = append(out, segEntry{seg: s, e: e})
			}
		}
	}
	return out
}

func stepOf(tag string, preds ...core.Predicate) *core.SelectorStep {
	return &core.SelectorStep{Tag: tag, Preds: preds}
}

// forceIndex drops the small-root threshold so the fixtures below
// exercise the indexed path.
func forceIndex(t *testing.T) {
	t.Helper()
	old := dirIndexMinEntries
	dirIndexMinEntries = 0
	t.Cleanup(func() { dirIndexMinEntries = old })
}

func checkLookup(t *testing.T, r *rootRecord, step *core.SelectorStep) {
	t.Helper()
	got := r.lookup(step)
	want := refLookup(r, step)
	if len(got) != len(want) {
		t.Fatalf("lookup(%s%v): %d matches, want %d", step.Tag, step.Preds, len(got), len(want))
	}
	for i := range got {
		if got[i].e != want[i].e {
			t.Errorf("lookup(%s%v): match %d is %s{%v}, want %s{%v}",
				step.Tag, step.Preds, i, got[i].e.name, got[i].e.key, want[i].e.name, want[i].e.key)
		}
	}
}

// TestDirIndexLookup drives the binary-search lookup against the linear
// reference over every step shape: keyless, fully keyed (hit, miss,
// duplicate display), under-specified, and unknown names.
func TestDirIndexLookup(t *testing.T) {
	forceIndex(t)
	var entries []childEntry
	for i := 0; i < 40; i++ {
		entries = append(entries, mkEntry("emp", "id", fmt.Sprintf("e%03d", i)))
	}
	// Two entries with distinct canonical keys but equal display values
	// (t(x) vs e(v(t(x))) both display differently — use two key paths
	// colliding on the joined display instead).
	entries = append(entries,
		childEntry{name: "item", key: &tkey{paths: []string{"id"}, canon: []string{"t(zz)"}}},
		childEntry{name: "item", key: &tkey{paths: []string{"id"}, canon: []string{"t(zz)"}}},
	)
	entries = append(entries, childEntry{name: "plain"}) // keyless entry
	r := mkRoot([]int{7, 13, 20, 2, 1}, entries)

	checkLookup(t, r, stepOf("emp", core.Predicate{Path: "id", Value: "e000"}))
	checkLookup(t, r, stepOf("emp", core.Predicate{Path: "id", Value: "e021"}))
	checkLookup(t, r, stepOf("emp", core.Predicate{Path: "id", Value: "e039"}))
	checkLookup(t, r, stepOf("emp", core.Predicate{Path: "id", Value: "nosuch"}))
	checkLookup(t, r, stepOf("emp", core.Predicate{Path: "wrongpath", Value: "e000"}))
	checkLookup(t, r, stepOf("emp"))                                           // ambiguous: first two in physical order
	checkLookup(t, r, stepOf("item", core.Predicate{Path: "id", Value: "zz"})) // duplicate display: ambiguous
	checkLookup(t, r, stepOf("plain"))
	checkLookup(t, r, stepOf("plain", core.Predicate{Path: "id", Value: "x"})) // keyless entry, keyed step
	checkLookup(t, r, stepOf("nosuch"))
	checkLookup(t, r, stepOf("aaaa")) // before every name
	checkLookup(t, r, stepOf("zzzz")) // after every name
}

// TestDirIndexMixedShapes: a name whose entries disagree on key-path
// shape disables the display fast path for that name but stays exact.
func TestDirIndexMixedShapes(t *testing.T) {
	forceIndex(t)
	entries := []childEntry{
		mkEntry("n", "a", "1"),
		{name: "n", key: &tkey{paths: []string{"a", "b"}, canon: []string{"t(1)", "t(2)"}}},
		mkEntry("n", "a", "3"),
	}
	r := mkRoot([]int{3}, entries)
	if tgt, ok := r.index().exactTarget(stepOf("n", core.Predicate{Path: "a", Value: "1"})); ok {
		t.Fatalf("mixed-shape name offered a fast path (target %q)", tgt)
	}
	checkLookup(t, r, stepOf("n", core.Predicate{Path: "a", Value: "1"}))
	checkLookup(t, r, stepOf("n", core.Predicate{Path: "a", Value: "1"}, core.Predicate{Path: "b", Value: "2"}))
	checkLookup(t, r, stepOf("n", core.Predicate{Path: "b", Value: "2"}))
}

// TestDirIndexUnsortedFallback: a directory violating the sort
// invariant (never produced by a healthy archive) falls back to the
// plain scan rather than missing matches.
func TestDirIndexUnsortedFallback(t *testing.T) {
	forceIndex(t)
	entries := []childEntry{
		mkEntry("z", "id", "1"),
		mkEntry("a", "id", "2"), // out of order
	}
	r := mkRoot([]int{2}, entries)
	if r.index().sorted {
		t.Fatal("index did not detect the unsorted directory")
	}
	checkLookup(t, r, stepOf("a", core.Predicate{Path: "id", Value: "2"}))
	checkLookup(t, r, stepOf("z"))
}

// TestDirIndexSmallRootLinear: below the build threshold no index is
// constructed and lookups run the original linear scan.
func TestDirIndexSmallRootLinear(t *testing.T) {
	entries := []childEntry{
		mkEntry("emp", "id", "a"),
		mkEntry("emp", "id", "b"),
	}
	r := mkRoot([]int{2}, entries)
	if !r.index().small {
		t.Fatal("small root built an index")
	}
	checkLookup(t, r, stepOf("emp", core.Predicate{Path: "id", Value: "b"}))
	checkLookup(t, r, stepOf("emp"))
	checkLookup(t, r, stepOf("nosuch"))
}

// TestDirIndexLookupCost: a fully-keyed lookup over a wide root touches
// O(log n) entries, pinned by counting display derivations indirectly —
// the lookup must not materialize a display for every entry. (The
// directory benchmarks measure wall-clock; this guards the shape.)
func TestDirIndexLookupCost(t *testing.T) {
	const n = 1 << 15
	entries := make([]childEntry, n)
	for i := range entries {
		entries[i] = mkEntry("rec", "id", fmt.Sprintf("k%06d", i))
	}
	r := mkRoot([]int{n}, entries)
	r.index() // build outside the measurement
	for _, probe := range []int{0, 1, n / 2, n - 1} {
		step := stepOf("rec", core.Predicate{Path: "id", Value: fmt.Sprintf("k%06d", probe)})
		got := r.lookup(step)
		if len(got) != 1 || got[0].e != &r.segs[0].entries[probe] {
			t.Fatalf("lookup k%06d: %v", probe, got)
		}
	}
}
