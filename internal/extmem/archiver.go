package extmem

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"xarch/internal/fsio"
	"xarch/internal/intervals"
	"xarch/internal/keys"
)

// Archiver is the external-memory archiver of §6: it maintains an archive
// in a directory, adding versions with bounded memory. The archive body
// is stored as key-range-partitioned segment files indexed by a
// persistent key directory (keydir.idx); see keydir.go and segment.go for
// the on-disk format. Frontier strategy is the plain archiver
// (whole-content alternatives); the in-memory archiver additionally
// offers the §4.2 weave.
type Archiver struct {
	dir  string
	spec *keys.Spec
	cfg  Config
	// fs is the filesystem seam every I/O of the archiver goes through:
	// fsio.OS in production, a fsio.FaultFS under the crash-consistency
	// harness.
	fs fsio.FS

	dict    *dictionary
	curDir  *keyDirectory
	nextSeg int

	// segDicts caches decoded v2 segment dictionaries per segment file;
	// entries are evicted when the file is swept.
	segDicts *dictCache

	// fastco is the byte-level coalescer's scratch state, allocated on
	// the first compaction that can use it (see compactfast.go).
	fastco *fastCoalescer

	// degraded is the poisoned-writer flag: set by the first commit
	// fault (failed fsync/rename), checked by every write entry point.
	// See degrade.go.
	degraded degradedState

	// genMu guards the generation table: every committed directory is a
	// generation; open query views pin the generation they captured so
	// its segment files are not deleted underneath them.
	genMu sync.Mutex
	gen   int
	gens  map[int]*genState

	bytesRead atomic.Int64
	// commits counts durable key-directory commits (commitState runs
	// whose rename succeeded) — the group-commit tests' evidence that a
	// batch of Adds shares one commit.
	commits atomic.Int64

	// LastSort reports the external sort of the most recent AddVersion.
	LastSort SortStats
	// LastMerge reports the segment work of the most recent AddVersion.
	LastMerge MergeStats
	// LastCompact reports the most recent compaction pass (explicit or
	// the opportunistic post-Add pass).
	LastCompact CompactStats
	// CompactErr holds the error of the last opportunistic post-Add
	// compaction pass, if any. Add itself still succeeds — the version
	// is durable before compaction starts and a failed pass leaves the
	// committed layout untouched — but the store surfaces the condition
	// here rather than silently dropping it.
	CompactErr error
	// IdxErr holds the error of the last attribute-index sidecar rebuild,
	// if any. The sidecar is advisory (see attridx.go): a failed rebuild
	// only costs query speed, never correctness, so the commit that
	// triggered it still succeeds.
	IdxErr error

	// aidx is the attribute index bound to curDir, nil when absent or
	// disabled; pendingIdx parks per-file facts captured during segment
	// writes until the post-commit sidecar rebuild consumes them.
	aidx       *attrIndex
	pendingIdx map[string]*capFile
}

// genState tracks one committed directory generation: how many open
// views pin it and which segment files it references.
type genState struct {
	refs  int
	files map[string]bool
}

// Config collects the archiver's tuning knobs.
type Config struct {
	// Budget caps the run former's in-memory partial trees, in tokens;
	// small budgets force many sorted runs (useful to exercise the
	// external path). Default 1<<20.
	Budget int
	// SegmentTarget is the segment file payload size the merge aims for,
	// in bytes. Smaller targets mean more segments: finer-grained merge
	// reuse and more selective seeks, at more files. Default 256 KiB.
	SegmentTarget int
	// Shards is the number of run-former workers ingest fans out to,
	// splitting top-level subtrees across cores. Default
	// min(4, GOMAXPROCS); 1 disables sharding.
	Shards int
	// NoDirectorySeek makes every query scan the full archive stream
	// instead of seeking through the key directory (diagnostic knob; the
	// two paths answer byte-identically).
	NoDirectorySeek bool
	// CompactTarget is the payload size below which a segment counts as
	// undersized for the compaction planner. Default SegmentTarget/2.
	CompactTarget int
	// CompactionBudget caps the payload bytes an opportunistic post-Add
	// compaction pass may rewrite. 0 (the default) disables the
	// opportunistic pass; explicit Compact calls are never budgeted.
	CompactionBudget int
	// SegmentFormat selects the on-disk encoding of newly written
	// segment files: 2 (the default) writes dictionary-interned v2
	// segments (see segdict.go), 1 the legacy inline-string format.
	// Existing v1 segments are rewritten to the v2 format at Open unless
	// NoMigrate is set.
	SegmentFormat int
	// NoMigrate suppresses the open-time rewrite of legacy format-1
	// segments. The archive then runs mixed-format: queries and merges
	// read both encodings, new writes use SegmentFormat. Mostly a
	// testing knob.
	NoMigrate bool
	// Compression block-compresses v2 segment payloads (64 KiB deflate
	// blocks with a per-block index, so directory seeks still land
	// mid-segment). Off by default: interning alone shrinks segments and
	// raw payloads keep scans cheapest; enable it where disk bytes
	// dominate.
	Compression bool
	// NoDictPreload leaves segment dictionaries to load lazily on first
	// query reference instead of being warmed at Open. Open becomes
	// O(1) in the segment count again, at the price of the first query
	// into each segment paying its dictionary decode.
	NoDictPreload bool
	// NoAttrIndex disables the attr.idx secondary-index sidecar: segment
	// writes skip fact capture, commits skip the sidecar rebuild, and
	// Select queries always run the exact streaming scan (diagnostic
	// knob; the indexed and scan paths answer identically).
	NoAttrIndex bool
	// RebuildAttrIndex forces a sidecar rebuild at Open even when no
	// version is added — fsck -repair uses it to restore a deleted or
	// stale attr.idx.
	RebuildAttrIndex bool
	// FS is the filesystem all archive I/O goes through. Nil means the
	// real filesystem (fsio.OS); the crash-consistency harness injects a
	// fsio.FaultFS here.
	FS fsio.FS
}

const defaultSegmentTarget = 256 * 1024

func (c *Config) setDefaults() {
	if c.Budget <= 0 {
		c.Budget = 1 << 20
	}
	if c.SegmentTarget <= 0 {
		c.SegmentTarget = defaultSegmentTarget
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 4 {
			c.Shards = 4
		}
	}
	if c.CompactTarget <= 0 {
		c.CompactTarget = c.SegmentTarget / 2
	}
	// The undersized threshold must not exceed the roll target: the
	// coalescer's output files land at about the segment target, so a
	// larger threshold would mark them undersized again and compaction
	// could never converge.
	if c.CompactTarget > c.SegmentTarget {
		c.CompactTarget = c.SegmentTarget
	}
	if c.SegmentFormat == 0 {
		c.SegmentFormat = segFormatV2
	}
	if c.FS == nil {
		c.FS = fsio.OS
	}
}

const (
	metaFile    = "meta.txt"
	dictFile    = "dict.txt"
	archiveFile = "archive.tok" // legacy monolithic layout (migrated on open)
)

// Open creates or reopens an archiver rooted at dir. Single-file archives
// from the monolithic layout are migrated to the segmented layout
// transparently; a corrupt or truncated key directory is detected by
// checksum and rebuilt by scanning the segment files.
func Open(dir string, spec *keys.Spec, cfg Config) (*Archiver, error) {
	cfg.setDefaults()
	if err := cfg.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("extmem: %w", err)
	}
	if cfg.SegmentFormat != segFormat && cfg.SegmentFormat != segFormatV2 {
		return nil, fmt.Errorf("extmem: unsupported segment format %d", cfg.SegmentFormat)
	}
	ar := &Archiver{
		dir: dir, spec: spec, cfg: cfg, fs: cfg.FS,
		dict: newDictionary(), gens: map[int]*genState{},
	}
	ar.segDicts = &dictCache{fs: ar.fs, dir: dir, counter: &ar.bytesRead}
	ar.nextSeg = ar.maxSegID() + 1

	metaData, metaErr := ar.fs.ReadFile(filepath.Join(dir, metaFile))
	kdData, kdErr := ar.fs.ReadFile(filepath.Join(dir, keydirFile))
	if errors.Is(metaErr, iofs.ErrNotExist) && errors.Is(kdErr, iofs.ErrNotExist) {
		// Fresh archive.
		ar.curDir = &keyDirectory{rootTime: intervals.New()}
		if err := ar.commitState(ar.curDir); err != nil {
			return nil, err
		}
		ar.finishOpen()
		return ar, nil
	}
	if metaErr != nil && kdErr != nil {
		return nil, fmt.Errorf("extmem: corrupt archive directory: %v", metaErr)
	}

	// The dictionary precedes everything: segment payloads and the
	// legacy token file reference names by id.
	df, err := ar.fs.Open(filepath.Join(dir, dictFile))
	if err != nil {
		return nil, fmt.Errorf("extmem: missing dictionary: %w", err)
	}
	ar.dict, err = loadDictionary(df)
	df.Close()
	if err != nil {
		return nil, err
	}

	// The key directory is authoritative: whenever it decodes, the
	// archive is in the segmented layout regardless of what meta.txt
	// looks like (a damaged meta backup must never reroute a healthy
	// archive into migration or rebuild).
	var d *keyDirectory
	if kdErr == nil {
		if dd, err := decodeKeyDirectory(kdData); err == nil {
			d = dd
		}
	}
	if d == nil && metaErr == nil && !strings.HasPrefix(string(metaData), "xarch-ext ") {
		if _, err := ar.fs.Stat(filepath.Join(dir, archiveFile)); err == nil {
			// Legacy v1 meta plus a monolithic token file: migrate.
			if err := ar.migrateV1(metaData); err != nil {
				return nil, err
			}
			ar.finishOpen()
			return ar, nil
		}
	}
	if d == nil {
		// Corrupt, truncated or missing key directory: fall back to
		// scanning the segment files meta.txt lists, using its root
		// records for what the payloads cannot supply.
		meta, err := parseMetaV2(bytes.NewReader(metaData))
		if err != nil {
			return nil, fmt.Errorf("extmem: key directory unreadable and %w", err)
		}
		d, err = ar.rebuildDirectory(meta)
		if err != nil {
			return nil, err
		}
		if err := ar.commitState(d); err != nil {
			return nil, err
		}
	} else if metaErr != nil || !metaMatches(metaData, d) {
		// Self-heal a stale or missing meta backup from the directory.
		if err := writeFileAtomic(ar.fs, filepath.Join(ar.dir, metaFile), encodeMeta(d)); err != nil {
			return nil, err
		}
	}
	d.resolveTags(ar.dict)
	ar.curDir = d
	// Transparent format upgrade: rewrite any legacy format-1 segments
	// before the orphan sweep, so a crash mid-migration strands only
	// files finishOpen removes on the next open.
	if ar.cfg.SegmentFormat == segFormatV2 && !ar.cfg.NoMigrate {
		if err := ar.migrateSegmentsV2(); err != nil {
			return nil, err
		}
	}
	ar.finishOpen()
	return ar, nil
}

// metaMatches reports whether the meta backup agrees with the directory.
func metaMatches(metaData []byte, d *keyDirectory) bool {
	meta, err := parseMetaV2(bytes.NewReader(metaData))
	if err != nil {
		return false
	}
	return meta.versions == d.versions && meta.rootTime.Equal(d.rootTime) && len(meta.roots) == len(d.roots)
}

// migrateV1 upgrades a monolithic archive.tok layout in place.
func (ar *Archiver) migrateV1(metaData []byte) error {
	var versions int
	var timeStr string
	if _, err := fmt.Fscanf(bytes.NewReader(metaData), "versions %d\nroottime %q\n", &versions, &timeStr); err != nil {
		return fmt.Errorf("extmem: corrupt meta: %w", err)
	}
	ts, err := intervals.Parse(timeStr)
	if err != nil {
		return fmt.Errorf("extmem: corrupt meta timestamp: %w", err)
	}
	// Any seg-*.tok files predating a v1 layout are leftovers of an
	// interrupted migration; the token file is still authoritative.
	for _, p := range ar.globSegments() {
		ar.fs.Remove(p)
	}
	d, newFiles, err := ar.migrateMonolithic(filepath.Join(ar.dir, archiveFile), versions, ts)
	if err != nil {
		for _, f := range newFiles {
			ar.fs.Remove(filepath.Join(ar.dir, f))
		}
		return err
	}
	if err := ar.commitState(d); err != nil {
		for _, f := range newFiles {
			ar.fs.Remove(filepath.Join(ar.dir, f))
		}
		return err
	}
	ar.fs.Remove(filepath.Join(ar.dir, archiveFile))
	d.resolveTags(ar.dict)
	ar.curDir = d
	return nil
}

// finishOpen installs generation 0 and garbage-collects files no
// committed state references (crash leftovers: orphan segments, temp
// files, a migrated token file).
func (ar *Archiver) finishOpen() {
	ar.gens[0] = &genState{files: ar.curDir.files()}
	live := ar.curDir.files()
	for _, p := range ar.globSegments() {
		if !live[filepath.Base(p)] {
			ar.fs.Remove(p)
		}
	}
	// A leftover monolithic token file (crash between a migration's
	// commit and its cleanup) is superseded by the committed segments.
	ar.fs.Remove(filepath.Join(ar.dir, archiveFile))
	ar.sweepTmp()
	ar.preloadDicts()
	ar.loadAttrIndex()
	if ar.aidx == nil && ar.cfg.RebuildAttrIndex {
		ar.updateAttrIndex()
	}
}

// preloadDicts warms the dictionary cache for every committed v2
// segment. The dictionaries are immutable per-segment metadata — the
// same class of state as the key directory loaded above — so paying
// their decode once at open keeps it off every query's first token.
// Best-effort: a segment that fails to load here surfaces its error on
// the query that actually touches it, exactly as without preloading.
func (ar *Archiver) preloadDicts() {
	if ar.cfg.NoDictPreload {
		return
	}
	for _, r := range ar.curDir.roots {
		for _, s := range r.segs {
			if s.format == segFormatV2 {
				ar.segDicts.get(s)
			}
		}
	}
}

// sweepTmp removes the transient files a crashed operation can strand:
// "tmp-*" scratch files (version/key/run/sorted files of an Add),
// "*.tmp" atomic-replace siblings (a commit killed between tmp-create
// and rename), and "*.part" replication staging files (a pull killed
// mid-transfer). Only committed state survives a reopen, so anything
// matching these patterns is garbage by construction. It returns what
// it removed (for fsck reporting).
func (ar *Archiver) sweepTmp() []string {
	var removed []string
	for _, name := range listTransient(ar.fs, ar.dir) {
		if ar.fs.Remove(filepath.Join(ar.dir, name)) == nil {
			removed = append(removed, name)
		}
	}
	return removed
}

// listTransient lists the transient crash-leftover files in dir:
// scratch files ("tmp-*"), atomic-replace siblings ("*.tmp"), and
// replication staging files ("*.part").
func listTransient(fs fsio.FS, dir string) []string {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasPrefix(n, "tmp-") || strings.HasSuffix(n, ".tmp") || strings.HasSuffix(n, ".part") {
			names = append(names, n)
		}
	}
	return names
}

func (ar *Archiver) globSegments() []string {
	ents, err := ar.fs.ReadDir(ar.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasPrefix(n, "seg-") && strings.HasSuffix(n, ".tok") {
			names = append(names, filepath.Join(ar.dir, n))
		}
	}
	return names
}

// maxSegID returns the highest segment file id on disk.
func (ar *Archiver) maxSegID() int {
	max := -1
	for _, p := range ar.globSegments() {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(p), "seg-%d.tok", &id); err == nil && id > max {
			max = id
		}
	}
	return max
}

// commitState persists the archive state crash-safely: dictionary and
// meta backup first, then the key directory — whose rename is the commit
// point for the segment layout.
func (ar *Archiver) commitState(d *keyDirectory) error {
	if err := ar.writable(); err != nil {
		return err
	}
	var db bytes.Buffer
	if err := ar.dict.save(&db); err != nil {
		return err
	}
	if err := writeFileAtomic(ar.fs, filepath.Join(ar.dir, dictFile), db.Bytes()); err != nil {
		return err
	}
	if err := writeFileAtomic(ar.fs, filepath.Join(ar.dir, metaFile), encodeMeta(d)); err != nil {
		return err
	}
	if err := writeFileAtomic(ar.fs, filepath.Join(ar.dir, keydirFile), d.encode()); err != nil {
		return err
	}
	ar.commits.Add(1)
	return nil
}

// installDir makes d the current directory generation and deletes the
// files of unpinned generations that no live generation references.
func (ar *Archiver) installDir(d *keyDirectory) {
	ar.genMu.Lock()
	defer ar.genMu.Unlock()
	oldGen := ar.gen
	old := ar.gens[oldGen]
	ar.gen++
	ar.gens[ar.gen] = &genState{files: d.files()}
	ar.curDir = d
	if old != nil && old.refs <= 0 {
		delete(ar.gens, oldGen)
		ar.sweepFiles(old.files)
	}
}

// acquireGen pins the current generation for a query view.
func (ar *Archiver) acquireGen() int {
	ar.genMu.Lock()
	defer ar.genMu.Unlock()
	ar.gens[ar.gen].refs++
	return ar.gen
}

// releaseGen unpins a generation; a fully released, superseded
// generation has its exclusive segment files deleted.
func (ar *Archiver) releaseGen(gen int) {
	ar.genMu.Lock()
	defer ar.genMu.Unlock()
	g := ar.gens[gen]
	if g == nil {
		return
	}
	g.refs--
	if g.refs <= 0 && gen != ar.gen {
		delete(ar.gens, gen)
		ar.sweepFiles(g.files)
	}
}

// sweepFiles deletes candidate segment files no live generation
// references. Callers hold genMu.
func (ar *Archiver) sweepFiles(cand map[string]bool) {
	for f := range cand {
		live := false
		for _, g := range ar.gens {
			if g.files[f] {
				live = true
				break
			}
		}
		if !live {
			ar.fs.Remove(filepath.Join(ar.dir, f))
			ar.segDicts.evict(f)
		}
	}
}

// Versions returns the number of archived versions.
func (ar *Archiver) Versions() int { return ar.curDir.versions }

// Spec returns the archiver's key specification.
func (ar *Archiver) Spec() *keys.Spec { return ar.spec }

// BytesRead returns the cumulative segment/archive bytes read by queries
// and merges since the archiver was opened — the telemetry behind the
// directory-seek benchmarks.
func (ar *Archiver) BytesRead() int64 { return ar.bytesRead.Load() }

// Close flushes the archive metadata. The archiver keeps no open file
// handles between operations, so Close is cheap; it exists so the store
// layer can offer one lifecycle across engines. A degraded archiver
// refuses the flush — its committed on-disk state is already
// authoritative and must not be touched by a poisoned writer.
func (ar *Archiver) Close() error {
	if err := ar.writable(); err != nil {
		return err
	}
	return ar.noteFatal(ar.commitState(ar.curDir))
}

// StorageStats summarizes the segmented layout.
type StorageStats struct {
	Roots            int
	Segments         int
	SegmentBytes     int64 // decoded payload bytes across segments
	StoredBytes      int64 // on-disk bytes (stored payloads + dictionaries)
	DirectoryEntries int   // child entries in the key directory
	DirectoryBytes   int   // encoded keydir.idx size
	LastAddReused    int   // segments the last Add linked unchanged
	LastAddRewritten int   // segments the last Add merged into new files
}

// StorageStats reports the current segment and key-directory shape.
func (ar *Archiver) StorageStats() StorageStats {
	d := ar.curDir
	st := StorageStats{
		Roots:            len(d.roots),
		DirectoryEntries: d.entryCount(),
		DirectoryBytes:   d.encodedLen,
		LastAddReused:    ar.LastMerge.SegmentsReused,
		LastAddRewritten: ar.LastMerge.SegmentsRewritten,
	}
	for _, r := range d.roots {
		for _, s := range r.segs {
			st.Segments++
			st.SegmentBytes += s.payload
			st.StoredBytes += s.stored + s.dictLen
		}
	}
	return st
}

// CompressedSize returns the archive's on-disk token bytes: the stored
// (for compressed segments: compressed) payloads plus the per-segment
// dictionaries. Headers and the state files are excluded, mirroring how
// the in-memory engine's compressed-size figure counts only encoded
// document bytes.
func (ar *Archiver) CompressedSize() int64 {
	var n int64
	for _, r := range ar.curDir.roots {
		for _, s := range r.segs {
			n += s.stored + s.dictLen
		}
	}
	return n
}

// SegmentInfo describes one segment file for inspection tooling.
type SegmentInfo struct {
	Root       string // label of the owning top-level subtree
	File       string
	Bytes      int64   // decoded payload bytes
	Stored     int64   // on-disk payload bytes (compressed when the flag is set)
	DictBytes  int64   // encoded dictionary section size (v2)
	Format     int     // segment format version (1 or 2)
	Fill       float64 // payload bytes / segment target size
	Entries    int
	FirstLabel string
	LastLabel  string
	Raw        bool
	CRCOK      bool
	// Compactable marks a segment that sits inside a planned coalesce
	// run: undersized (below the compaction target) with at least one
	// undersized neighbor in the same root.
	Compactable bool
}

// Segments lists every segment with its key range and fill ratio,
// verifying each payload checksum (an O(archive) read; meant for the
// inspect tooling). Segments a compaction pass would coalesce are
// flagged.
func (ar *Archiver) Segments() []SegmentInfo {
	candidates := map[string]bool{}
	for _, run := range ar.CompactionPlan() {
		for _, f := range run.Files {
			candidates[f] = true
		}
	}
	var out []SegmentInfo
	for _, r := range ar.curDir.roots {
		for _, s := range r.segs {
			info := SegmentInfo{
				Root: keyLabel(r.name, r.key), File: s.file,
				Bytes: s.payload, Stored: s.stored, DictBytes: s.dictLen,
				Format: s.format, Entries: len(s.entries), Raw: r.raw,
				Fill:        float64(s.payload) / float64(ar.cfg.SegmentTarget),
				Compactable: candidates[s.file],
			}
			if len(s.entries) > 0 {
				first, last := &s.entries[0], &s.entries[len(s.entries)-1]
				info.FirstLabel = keyLabel(first.name, first.key)
				info.LastLabel = keyLabel(last.name, last.key)
			}
			info.CRCOK = verifySegment(ar.fs, filepath.Join(ar.dir, s.file), s) == nil
			out = append(out, info)
		}
	}
	return out
}

// AddVersionFile archives the XML document in path as the next version.
func (ar *Archiver) AddVersionFile(path string) error {
	f, err := ar.fs.Open(path)
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	defer f.Close()
	return ar.AddVersion(f)
}

// AddEmptyVersion archives an empty database as the next version.
func (ar *Archiver) AddEmptyVersion() error { return ar.AddVersion(nil) }

// AddVersion archives the XML document read from r as the next version,
// running the §6 phases: decompose, external sort, and a segment-local
// streaming merge that rewrites only the segments whose key ranges the
// version touches. A failed fsync or rename in the commit protocol
// poisons the writer: the error satisfies errors.Is(err, ErrDegraded),
// every later write fails fast, and readers keep serving the last
// committed generation (see degrade.go).
func (ar *Archiver) AddVersion(r io.Reader) error {
	items, err := ar.AddVersionBatch([]io.Reader{r})
	if err != nil {
		return err
	}
	return items[0].Err
}

// BatchItem reports the outcome of one document of an AddVersionBatch
// call: the version number it landed in, or its own failure.
type BatchItem struct {
	// Version is the version number assigned to the document; valid only
	// when Err is nil and the batch call itself returned no error.
	Version int
	// Err is the document's own failure (a parse, decompose or merge
	// error). A document that fails is skipped — it consumes no version
	// number — and the rest of the batch still commits.
	Err error
}

// AddVersionBatch archives each reader as the next consecutive version
// with ONE durability commit for the whole group: every document runs
// the full decompose/sort/merge pipeline, each merging against the
// uncommitted directory of its predecessor, and only the final directory
// goes through the tmp+fsync+rename commit protocol — the group-commit
// amortization behind the archive server's ingest path. A nil reader
// archives an empty version.
//
// The returned slice has one BatchItem per reader: a document whose own
// pipeline fails gets its error there, consumes no version number, and
// does not disturb the rest of the batch. A non-nil error return means
// the batch as a whole failed — NOTHING was committed (the archive is
// unchanged, every per-item Version is void) and, when the failure was a
// durability-critical commit step, the writer is now poisoned
// (errors.Is(err, ErrDegraded)). Until the final commit succeeds no
// reader observes any of the batch's versions.
func (ar *Archiver) AddVersionBatch(readers []io.Reader) ([]BatchItem, error) {
	if err := ar.writable(); err != nil {
		return nil, err
	}
	if len(readers) == 0 {
		return nil, nil
	}
	return ar.addBatch(readers)
}

// CommitCount returns the number of durable key-directory commits
// (tmp+fsync+rename protocol runs) since the archiver was opened,
// including the open itself. The archive server's group-commit tests
// compare it against submitter counts.
func (ar *Archiver) CommitCount() int64 { return ar.commits.Load() }

func (ar *Archiver) addBatch(readers []io.Reader) ([]BatchItem, error) {
	items := make([]BatchItem, len(readers))
	base := ar.curDir
	staged := base
	var stagedFiles []string // segments written by the batch, uncommitted
	committed := false
	defer func() {
		if !committed {
			for _, f := range stagedFiles {
				ar.fs.Remove(filepath.Join(ar.dir, f))
			}
		}
	}()
	// fatal aborts the whole batch: poison the writer if the error was a
	// commit fault; the deferred sweep removes every staged segment.
	fatal := func(err error) ([]BatchItem, error) {
		return items, ar.noteFatal(err)
	}
	isCommitFault := func(err error) bool {
		var cf *commitFault
		return errors.As(err, &cf)
	}
	for k, r := range readers {
		sortedPath, scratch, err := ar.prepareSorted(r)
		if err != nil {
			removePaths(ar.fs, scratch)
			items[k].Err = err
			if isCommitFault(err) {
				return fatal(err)
			}
			continue
		}
		vnum := staged.versions + 1
		newDir, stats, newFiles, err := ar.mergeIntoSegments(staged, sortedPath, vnum)
		removePaths(ar.fs, scratch)
		if err != nil {
			for _, f := range newFiles {
				ar.fs.Remove(filepath.Join(ar.dir, f))
			}
			items[k].Err = err
			if isCommitFault(err) {
				return fatal(err)
			}
			continue
		}
		staged = newDir
		stagedFiles = append(stagedFiles, newFiles...)
		items[k].Version = vnum
		ar.LastMerge = stats
	}
	if staged == base {
		// Every document failed its own pipeline: nothing to commit.
		return items, nil
	}
	if err := ar.commitState(staged); err != nil {
		return fatal(err)
	}
	committed = true
	ar.installDir(staged)
	// Segments written for early batch members and already superseded
	// within the same batch belong to no committed generation (the batch
	// commits only its final directory): delete them now.
	live := staged.files()
	for _, f := range stagedFiles {
		if !live[f] {
			ar.fs.Remove(filepath.Join(ar.dir, f))
		}
	}
	// The batch is durable; refresh the advisory attribute-index sidecar
	// for the new directory (best-effort, see attridx.go).
	ar.updateAttrIndex()
	// Opportunistic maintenance: coalesce undersized neighbor segments
	// under the configured byte budget. The batch is already durable; a
	// compaction failure leaves the committed layout intact and is
	// reported through CompactErr instead of failing the batch.
	ar.CompactErr = nil
	if ar.cfg.CompactionBudget > 0 {
		if _, cerr := ar.compact(int64(ar.cfg.CompactionBudget)); cerr != nil {
			ar.CompactErr = ar.noteFatal(cerr)
		}
	}
	return items, nil
}

// removePaths removes a set of absolute scratch paths, best-effort.
func removePaths(fs fsio.FS, paths []string) {
	for _, p := range paths {
		fs.Remove(p)
	}
}

// prepareSorted runs phases 1–3 of the §6 pipeline for one version —
// decompose, sharded run forming, run merge — and returns the path of
// the sorted version file plus every scratch file created (sortedPath
// included). The caller removes the scratch files when done with them;
// a nil reader produces an empty sorted file (an empty version).
func (ar *Archiver) prepareSorted(r io.Reader) (sortedPath string, scratch []string, err error) {
	tmp := func(name string) string { return filepath.Join(ar.dir, fmt.Sprintf("tmp-%s", name)) }

	sortedPath = tmp("sorted.tok")
	if r != nil {
		// Phases 1+2, pipelined: decompose streams the version into the
		// token file and the per-pattern key files while workers follow
		// those files and form the bounded-memory sorted runs, so run
		// forming's in-memory tree building overlaps decompose's parse and
		// I/O. Key files are pre-created for every pattern of the spec
		// (normalizing the spec here, before the workers share it).
		tokPath := tmp("version.tok")
		scratch = append(scratch, tokPath)
		tokF, err := ar.fs.Create(tokPath)
		if err != nil {
			return "", scratch, fmt.Errorf("extmem: %w", err)
		}
		progTok := newProgress()
		tw := newTokenWriter(&progressWriter{f: tokF, p: progTok})

		type keyFile struct {
			path string
			f    fsio.File
			w    *tokenWriter
			prog *progress
		}
		keyFiles := map[string]*keyFile{}
		for _, k := range ar.spec.AllKeys() {
			pattern := k.NodePath().Absolute()
			if _, ok := keyFiles[pattern]; ok {
				continue
			}
			p := tmp("keys-" + sanitize(pattern) + ".key")
			scratch = append(scratch, p)
			f, err := ar.fs.Create(p)
			if err != nil {
				tw.release()
				tokF.Close()
				for _, kf := range keyFiles {
					kf.w.release()
					kf.f.Close()
				}
				return "", scratch, fmt.Errorf("extmem: %w", err)
			}
			prog := newProgress()
			keyFiles[pattern] = &keyFile{path: p, f: f, w: newTokenWriter(&progressWriter{f: f, p: prog}), prog: prog}
		}
		finishAll := func(err error) {
			progTok.finish(err)
			for _, kf := range keyFiles {
				kf.prog.finish(err)
			}
		}

		type runResult struct {
			runs  []string
			stats SortStats
			err   error
		}
		resCh := make(chan runResult, 1)
		go func() {
			tokIn, err := ar.fs.Open(tokPath)
			if err != nil {
				resCh <- runResult{err: fmt.Errorf("extmem: %w", err)}
				return
			}
			defer tokIn.Close()
			var keyReaders []fsio.File
			defer func() {
				for _, f := range keyReaders {
					f.Close()
				}
			}()
			openKeyReader := func(pattern string) (*rawReader, error) {
				kf, ok := keyFiles[pattern]
				if !ok {
					return nil, fmt.Errorf("extmem: no key file for pattern %s", pattern)
				}
				f, err := ar.fs.Open(kf.path)
				if err != nil {
					return nil, fmt.Errorf("extmem: %w", err)
				}
				keyReaders = append(keyReaders, f)
				return newRawReader(&followReader{f: f, p: kf.prog}), nil
			}
			tr := newTokenReader(&followReader{f: tokIn, p: progTok})
			runs, stats, err := formRunsSharded(ar.fs, tr, ar.dict, ar.spec, ar.cfg.Budget, ar.dir, "tmp", openKeyReader, ar.cfg.Shards)
			tr.release()
			resCh <- runResult{runs: runs, stats: stats, err: err}
		}()

		keyWriter := func(pattern string) (*tokenWriter, error) {
			kf, ok := keyFiles[pattern]
			if !ok {
				return nil, fmt.Errorf("extmem: key pattern %s not in specification", pattern)
			}
			return kf.w, nil
		}
		// Periodically flushing the writers publishes their bytes to the
		// following run formers, keeping the pipeline overlapped instead
		// of draining everything at end of document.
		syncWriters := func() error {
			if err := tw.flush(); err != nil {
				return err
			}
			for _, kf := range keyFiles {
				if err := kf.w.flush(); err != nil {
					return err
				}
			}
			return nil
		}
		_, derr := decompose(r, ar.spec, ar.dict, tw, keyWriter, syncWriters)
		if derr == nil {
			derr = syncWriters()
		}
		finishAll(derr)
		res := <-resCh
		scratch = append(scratch, res.runs...)
		tw.release()
		for _, kf := range keyFiles {
			kf.w.release()
			kf.f.Close()
		}
		if cerr := tokF.Close(); derr == nil && cerr != nil {
			derr = cerr
		}
		if derr != nil {
			return "", scratch, derr
		}
		if res.err != nil {
			return "", scratch, res.err
		}
		ar.LastSort = res.stats

		// Phase 3: merge the runs into one sorted version.
		scratch = append(scratch, sortedPath)
		if err := mergeRunFiles(ar.fs, res.runs, ar.dict, sortedPath); err != nil {
			return "", scratch, err
		}
	} else {
		scratch = append(scratch, sortedPath)
		if err := ar.fs.WriteFile(sortedPath, nil, 0o644); err != nil {
			return "", scratch, fmt.Errorf("extmem: %w", err)
		}
	}
	return sortedPath, scratch, nil
}

func sanitize(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteArchiveXML streams the archive in the paper's XML form (compact,
// no indentation): the outer <T> carries the root timestamp; explicit
// node timestamps and content groups become nested <T> elements, with
// <_attr> carriers for attribute items inside groups. The emitter (and
// its XML escaping) is shared with the streaming query engine and the
// xmltree serializer, so the forms can never diverge.
func (ar *Archiver) WriteArchiveXML(w io.Writer) error {
	q, err := ar.OpenQuery()
	if err != nil {
		return err
	}
	defer q.Close()
	return q.WriteArchiveXML(w, false)
}
