package extmem

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"xarch/internal/intervals"
	"xarch/internal/keys"
)

// Archiver is the external-memory archiver of §6: it maintains an archive
// in a directory as token files, adding versions with bounded memory.
// Frontier strategy is the plain archiver (whole-content alternatives);
// the in-memory archiver additionally offers the §4.2 weave.
type Archiver struct {
	dir    string
	spec   *keys.Spec
	budget int // run-former memory budget, in tokens

	dict     *dictionary
	versions int
	rootTime *intervals.Set

	// LastSort reports the external sort of the most recent AddVersion.
	LastSort SortStats
}

const (
	metaFile    = "meta.txt"
	dictFile    = "dict.txt"
	archiveFile = "archive.tok"
)

// Open creates or reopens an archiver rooted at dir. budget caps the run
// former's in-memory partial tree, in tokens; small budgets force many
// sorted runs (useful to exercise the external path).
func Open(dir string, spec *keys.Spec, budget int) (*Archiver, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("extmem: %w", err)
	}
	ar := &Archiver{
		dir: dir, spec: spec, budget: budget,
		dict: newDictionary(), rootTime: intervals.New(),
	}
	if f, err := os.Open(filepath.Join(dir, metaFile)); err == nil {
		defer f.Close()
		var versions int
		var timeStr string
		if _, err := fmt.Fscanf(f, "versions %d\nroottime %q\n", &versions, &timeStr); err != nil {
			return nil, fmt.Errorf("extmem: corrupt meta: %w", err)
		}
		ts, err := intervals.Parse(timeStr)
		if err != nil {
			return nil, fmt.Errorf("extmem: corrupt meta timestamp: %w", err)
		}
		ar.versions = versions
		ar.rootTime = ts
		df, err := os.Open(filepath.Join(dir, dictFile))
		if err != nil {
			return nil, fmt.Errorf("extmem: missing dictionary: %w", err)
		}
		defer df.Close()
		ar.dict, err = loadDictionary(df)
		if err != nil {
			return nil, err
		}
	} else {
		// Fresh archive: empty token file.
		if err := os.WriteFile(filepath.Join(dir, archiveFile), nil, 0o644); err != nil {
			return nil, fmt.Errorf("extmem: %w", err)
		}
		if err := ar.saveMeta(); err != nil {
			return nil, err
		}
	}
	return ar, nil
}

// Versions returns the number of archived versions.
func (ar *Archiver) Versions() int { return ar.versions }

// Spec returns the archiver's key specification.
func (ar *Archiver) Spec() *keys.Spec { return ar.spec }

// Close flushes the archive metadata. The archiver keeps no open file
// handles between operations, so Close is cheap; it exists so the store
// layer can offer one lifecycle across engines.
func (ar *Archiver) Close() error { return ar.saveMeta() }

// ArchiveTokenPath returns the path of the current archive token file.
func (ar *Archiver) ArchiveTokenPath() string { return filepath.Join(ar.dir, archiveFile) }

func (ar *Archiver) saveMeta() error {
	var b strings.Builder
	fmt.Fprintf(&b, "versions %d\nroottime %q\n", ar.versions, ar.rootTime.String())
	if err := os.WriteFile(filepath.Join(ar.dir, metaFile), []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	df, err := os.Create(filepath.Join(ar.dir, dictFile))
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	if err := ar.dict.save(df); err != nil {
		df.Close()
		return err
	}
	return df.Close()
}

// AddVersionFile archives the XML document in path as the next version.
func (ar *Archiver) AddVersionFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	defer f.Close()
	return ar.AddVersion(f)
}

// AddEmptyVersion archives an empty database as the next version.
func (ar *Archiver) AddEmptyVersion() error { return ar.AddVersion(nil) }

// AddVersion archives the XML document read from r as the next version,
// running the three §6 phases: decompose, external sort, streaming merge.
func (ar *Archiver) AddVersion(r io.Reader) error {
	i := ar.versions + 1
	tmp := func(name string) string { return filepath.Join(ar.dir, fmt.Sprintf("tmp-%s", name)) }
	var cleanup []string
	defer func() {
		for _, p := range cleanup {
			os.Remove(p)
		}
	}()

	sortedPath := tmp("sorted.tok")
	if r != nil {
		// Phases 1+2, pipelined: decompose streams the version into the
		// token file and the per-pattern key files while a worker follows
		// those files and forms the bounded-memory sorted runs, so run
		// forming's in-memory tree building overlaps decompose's parse and
		// I/O. Key files are pre-created for every pattern of the spec
		// (normalizing the spec here, before the worker shares it).
		tokPath := tmp("version.tok")
		cleanup = append(cleanup, tokPath)
		tokF, err := os.Create(tokPath)
		if err != nil {
			return fmt.Errorf("extmem: %w", err)
		}
		progTok := newProgress()
		tw := newTokenWriter(&progressWriter{f: tokF, p: progTok})

		type keyFile struct {
			path string
			f    *os.File
			w    *tokenWriter
			prog *progress
		}
		keyFiles := map[string]*keyFile{}
		for _, k := range ar.spec.AllKeys() {
			pattern := k.NodePath().Absolute()
			if _, ok := keyFiles[pattern]; ok {
				continue
			}
			p := tmp("keys-" + sanitize(pattern) + ".key")
			cleanup = append(cleanup, p)
			f, err := os.Create(p)
			if err != nil {
				tw.release()
				tokF.Close()
				for _, kf := range keyFiles {
					kf.w.release()
					kf.f.Close()
				}
				return fmt.Errorf("extmem: %w", err)
			}
			prog := newProgress()
			keyFiles[pattern] = &keyFile{path: p, f: f, w: newTokenWriter(&progressWriter{f: f, p: prog}), prog: prog}
		}
		finishAll := func(err error) {
			progTok.finish(err)
			for _, kf := range keyFiles {
				kf.prog.finish(err)
			}
		}

		type runResult struct {
			runs  []string
			stats SortStats
			err   error
		}
		resCh := make(chan runResult, 1)
		go func() {
			tokIn, err := os.Open(tokPath)
			if err != nil {
				resCh <- runResult{err: fmt.Errorf("extmem: %w", err)}
				return
			}
			defer tokIn.Close()
			var keyReaders []*os.File
			defer func() {
				for _, f := range keyReaders {
					f.Close()
				}
			}()
			openKeyReader := func(pattern string) (*rawReader, error) {
				kf, ok := keyFiles[pattern]
				if !ok {
					return nil, fmt.Errorf("extmem: no key file for pattern %s", pattern)
				}
				f, err := os.Open(kf.path)
				if err != nil {
					return nil, fmt.Errorf("extmem: %w", err)
				}
				keyReaders = append(keyReaders, f)
				return newRawReader(&followReader{f: f, p: kf.prog}), nil
			}
			tr := newTokenReader(&followReader{f: tokIn, p: progTok})
			runs, stats, err := formRuns(tr, ar.dict, ar.spec, ar.budget, ar.dir, "tmp", openKeyReader)
			tr.release()
			resCh <- runResult{runs: runs, stats: stats, err: err}
		}()

		keyWriter := func(pattern string) (*tokenWriter, error) {
			kf, ok := keyFiles[pattern]
			if !ok {
				return nil, fmt.Errorf("extmem: key pattern %s not in specification", pattern)
			}
			return kf.w, nil
		}
		// Periodically flushing the writers publishes their bytes to the
		// following run former, keeping the pipeline overlapped instead of
		// draining everything at end of document.
		syncWriters := func() error {
			if err := tw.flush(); err != nil {
				return err
			}
			for _, kf := range keyFiles {
				if err := kf.w.flush(); err != nil {
					return err
				}
			}
			return nil
		}
		_, derr := decompose(r, ar.spec, ar.dict, tw, keyWriter, syncWriters)
		if derr == nil {
			derr = syncWriters()
		}
		finishAll(derr)
		res := <-resCh
		cleanup = append(cleanup, res.runs...)
		tw.release()
		for _, kf := range keyFiles {
			kf.w.release()
			kf.f.Close()
		}
		if cerr := tokF.Close(); derr == nil && cerr != nil {
			derr = cerr
		}
		if derr != nil {
			return derr
		}
		if res.err != nil {
			return res.err
		}
		ar.LastSort = res.stats

		// Phase 3: merge the runs into one sorted version.
		cleanup = append(cleanup, sortedPath)
		if err := mergeRunFiles(res.runs, ar.dict, sortedPath); err != nil {
			return err
		}
	} else {
		cleanup = append(cleanup, sortedPath)
		if err := os.WriteFile(sortedPath, nil, 0o644); err != nil {
			return fmt.Errorf("extmem: %w", err)
		}
	}

	// Phase 4: streaming nested merge of archive and sorted version.
	newRoot := ar.rootTime.Clone()
	newRoot.Add(i)
	aF, err := os.Open(ar.ArchiveTokenPath())
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	dF, err := os.Open(sortedPath)
	if err != nil {
		aF.Close()
		return fmt.Errorf("extmem: %w", err)
	}
	outPath := tmp("archive.new")
	outF, err := os.Create(outPath)
	if err != nil {
		aF.Close()
		dF.Close()
		return fmt.Errorf("extmem: %w", err)
	}
	sm := &streamMerger{dict: ar.dict, spec: ar.spec, out: newTokenWriter(outF), i: i}
	aTR, dTR := newTokenReader(aF), newTokenReader(dF)
	err = sm.mergeLevel(aTR, dTR, newRoot, nil)
	aTR.release()
	dTR.release()
	aF.Close()
	dF.Close()
	if err == nil {
		err = sm.out.flush()
	}
	sm.out.release()
	if cerr := outF.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(outPath)
		return err
	}
	if err := os.Rename(outPath, ar.ArchiveTokenPath()); err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	ar.versions = i
	ar.rootTime = newRoot
	return ar.saveMeta()
}

func sanitize(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteArchiveXML streams the archive in the paper's XML form (compact,
// no indentation): the outer <T> carries the root timestamp; explicit
// node timestamps and content groups become nested <T> elements, with
// <_attr> carriers for attribute items inside groups. The emitter (and
// its XML escaping) is shared with the streaming query engine and the
// xmltree serializer, so the forms can never diverge.
func (ar *Archiver) WriteArchiveXML(w io.Writer) error {
	q, err := ar.OpenQuery()
	if err != nil {
		return err
	}
	defer q.Close()
	return q.WriteArchiveXML(w, false)
}
