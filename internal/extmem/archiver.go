package extmem

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"xarch/internal/intervals"
	"xarch/internal/keys"
)

// Archiver is the external-memory archiver of §6: it maintains an archive
// in a directory as token files, adding versions with bounded memory.
// Frontier strategy is the plain archiver (whole-content alternatives);
// the in-memory archiver additionally offers the §4.2 weave.
type Archiver struct {
	dir    string
	spec   *keys.Spec
	budget int // run-former memory budget, in tokens

	dict     *dictionary
	versions int
	rootTime *intervals.Set

	// LastSort reports the external sort of the most recent AddVersion.
	LastSort SortStats
}

const (
	metaFile    = "meta.txt"
	dictFile    = "dict.txt"
	archiveFile = "archive.tok"
)

// Open creates or reopens an archiver rooted at dir. budget caps the run
// former's in-memory partial tree, in tokens; small budgets force many
// sorted runs (useful to exercise the external path).
func Open(dir string, spec *keys.Spec, budget int) (*Archiver, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("extmem: %w", err)
	}
	ar := &Archiver{
		dir: dir, spec: spec, budget: budget,
		dict: newDictionary(), rootTime: intervals.New(),
	}
	if f, err := os.Open(filepath.Join(dir, metaFile)); err == nil {
		defer f.Close()
		var versions int
		var timeStr string
		if _, err := fmt.Fscanf(f, "versions %d\nroottime %q\n", &versions, &timeStr); err != nil {
			return nil, fmt.Errorf("extmem: corrupt meta: %w", err)
		}
		ts, err := intervals.Parse(timeStr)
		if err != nil {
			return nil, fmt.Errorf("extmem: corrupt meta timestamp: %w", err)
		}
		ar.versions = versions
		ar.rootTime = ts
		df, err := os.Open(filepath.Join(dir, dictFile))
		if err != nil {
			return nil, fmt.Errorf("extmem: missing dictionary: %w", err)
		}
		defer df.Close()
		ar.dict, err = loadDictionary(df)
		if err != nil {
			return nil, err
		}
	} else {
		// Fresh archive: empty token file.
		if err := os.WriteFile(filepath.Join(dir, archiveFile), nil, 0o644); err != nil {
			return nil, fmt.Errorf("extmem: %w", err)
		}
		if err := ar.saveMeta(); err != nil {
			return nil, err
		}
	}
	return ar, nil
}

// Versions returns the number of archived versions.
func (ar *Archiver) Versions() int { return ar.versions }

// Spec returns the archiver's key specification.
func (ar *Archiver) Spec() *keys.Spec { return ar.spec }

// Close flushes the archive metadata. The archiver keeps no open file
// handles between operations, so Close is cheap; it exists so the store
// layer can offer one lifecycle across engines.
func (ar *Archiver) Close() error { return ar.saveMeta() }

// ArchiveTokenPath returns the path of the current archive token file.
func (ar *Archiver) ArchiveTokenPath() string { return filepath.Join(ar.dir, archiveFile) }

func (ar *Archiver) saveMeta() error {
	var b strings.Builder
	fmt.Fprintf(&b, "versions %d\nroottime %q\n", ar.versions, ar.rootTime.String())
	if err := os.WriteFile(filepath.Join(ar.dir, metaFile), []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	df, err := os.Create(filepath.Join(ar.dir, dictFile))
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	if err := ar.dict.save(df); err != nil {
		df.Close()
		return err
	}
	return df.Close()
}

// AddVersionFile archives the XML document in path as the next version.
func (ar *Archiver) AddVersionFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	defer f.Close()
	return ar.AddVersion(f)
}

// AddEmptyVersion archives an empty database as the next version.
func (ar *Archiver) AddEmptyVersion() error { return ar.AddVersion(nil) }

// AddVersion archives the XML document read from r as the next version,
// running the three §6 phases: decompose, external sort, streaming merge.
func (ar *Archiver) AddVersion(r io.Reader) error {
	i := ar.versions + 1
	tmp := func(name string) string { return filepath.Join(ar.dir, fmt.Sprintf("tmp-%s", name)) }
	var cleanup []string
	defer func() {
		for _, p := range cleanup {
			os.Remove(p)
		}
	}()

	sortedPath := tmp("sorted.tok")
	if r != nil {
		// Phase 1: decompose into internal representation + key files.
		tokPath := tmp("version.tok")
		cleanup = append(cleanup, tokPath)
		tokF, err := os.Create(tokPath)
		if err != nil {
			return fmt.Errorf("extmem: %w", err)
		}
		tw := newTokenWriter(tokF)
		var keyFiles []*os.File
		keyPath := func(pattern string) string {
			return tmp("keys-" + sanitize(pattern) + ".key")
		}
		openKeyWriter := func(pattern string) (*tokenWriter, error) {
			p := keyPath(pattern)
			cleanup = append(cleanup, p)
			f, err := os.Create(p)
			if err != nil {
				return nil, fmt.Errorf("extmem: %w", err)
			}
			keyFiles = append(keyFiles, f)
			return newTokenWriter(f), nil
		}
		if _, err := decompose(r, ar.spec, ar.dict, tw, openKeyWriter); err != nil {
			tokF.Close()
			return err
		}
		if err := tw.flush(); err != nil {
			tokF.Close()
			return err
		}
		if err := tokF.Close(); err != nil {
			return err
		}
		for _, kf := range keyFiles {
			// The writers buffer; flush through a final sync of each file.
			if err := kf.Close(); err != nil {
				return err
			}
		}

		// Phase 2: bounded-memory sorted runs.
		tokIn, err := os.Open(tokPath)
		if err != nil {
			return fmt.Errorf("extmem: %w", err)
		}
		var keyReaders []*os.File
		openKeyReader := func(pattern string) (*rawReader, error) {
			f, err := os.Open(keyPath(pattern))
			if err != nil {
				return nil, fmt.Errorf("extmem: %w", err)
			}
			keyReaders = append(keyReaders, f)
			return newRawReader(f), nil
		}
		runs, stats, err := formRuns(newTokenReader(tokIn), ar.dict, ar.spec, ar.budget, ar.dir, "tmp", openKeyReader)
		tokIn.Close()
		for _, f := range keyReaders {
			f.Close()
		}
		cleanup = append(cleanup, runs...)
		if err != nil {
			return err
		}
		ar.LastSort = stats

		// Phase 3: merge the runs into one sorted version.
		cleanup = append(cleanup, sortedPath)
		if err := mergeRunFiles(runs, ar.dict, sortedPath); err != nil {
			return err
		}
	} else {
		cleanup = append(cleanup, sortedPath)
		if err := os.WriteFile(sortedPath, nil, 0o644); err != nil {
			return fmt.Errorf("extmem: %w", err)
		}
	}

	// Phase 4: streaming nested merge of archive and sorted version.
	newRoot := ar.rootTime.Clone()
	newRoot.Add(i)
	aF, err := os.Open(ar.ArchiveTokenPath())
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	dF, err := os.Open(sortedPath)
	if err != nil {
		aF.Close()
		return fmt.Errorf("extmem: %w", err)
	}
	outPath := tmp("archive.new")
	outF, err := os.Create(outPath)
	if err != nil {
		aF.Close()
		dF.Close()
		return fmt.Errorf("extmem: %w", err)
	}
	sm := &streamMerger{dict: ar.dict, spec: ar.spec, out: newTokenWriter(outF), i: i}
	err = sm.mergeLevel(newTokenReader(aF), newTokenReader(dF), newRoot, nil)
	aF.Close()
	dF.Close()
	if err == nil {
		err = sm.out.flush()
	}
	if cerr := outF.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(outPath)
		return err
	}
	if err := os.Rename(outPath, ar.ArchiveTokenPath()); err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	ar.versions = i
	ar.rootTime = newRoot
	return ar.saveMeta()
}

func sanitize(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteArchiveXML streams the archive in the paper's XML form (compact,
// no indentation): the outer <T> carries the root timestamp; explicit
// node timestamps and content groups become nested <T> elements, with
// <_attr> carriers for attribute items inside groups.
func (ar *Archiver) WriteArchiveXML(w io.Writer) error {
	f, err := os.Open(ar.ArchiveTokenPath())
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(w, 64*1024)
	fmt.Fprintf(bw, `<T t="%s"><root>`, ar.rootTime.String())

	tr := newTokenReader(f)
	type frame struct {
		name    string
		wrapped bool // node wrapped in a <T> element
		open    bool // start tag still open (no attrs written yet? always closed before children)
		started bool // '>' written
	}
	var stack []frame
	closeStart := func() {
		if n := len(stack); n > 0 && !stack[n-1].started {
			bw.WriteByte('>')
			stack[n-1].started = true
		}
	}
	inGroup := false
	for {
		t, ok := tr.take()
		if !ok {
			break
		}
		switch t.op {
		case tokOpen:
			closeStart()
			name, err := ar.dict.name(t.tag)
			if err != nil {
				return err
			}
			wrapped := false
			if t.data != "" && !inGroup {
				fmt.Fprintf(bw, `<T t="%s">`, t.data)
				wrapped = true
			}
			bw.WriteByte('<')
			bw.WriteString(name)
			stack = append(stack, frame{name: name, wrapped: wrapped})
		case tokAttr:
			name, err := ar.dict.name(t.tag)
			if err != nil {
				return err
			}
			if len(stack) > 0 && !stack[len(stack)-1].started {
				fmt.Fprintf(bw, ` %s="`, name)
				xmlEscape(bw, t.data, true)
				bw.WriteByte('"')
			} else {
				// An attribute item inside group content after other
				// items: carry it in an <_attr> element.
				fmt.Fprintf(bw, `<_attr n="`)
				xmlEscape(bw, name, true)
				bw.WriteString(`">`)
				xmlEscape(bw, t.data, false)
				bw.WriteString("</_attr>")
			}
		case tokText:
			closeStart()
			xmlEscape(bw, t.data, false)
		case tokClose:
			n := len(stack)
			if n == 0 {
				return fmt.Errorf("extmem: unbalanced archive tokens")
			}
			fr := stack[n-1]
			stack = stack[:n-1]
			if !fr.started {
				bw.WriteString("/>")
			} else {
				fmt.Fprintf(bw, "</%s>", fr.name)
			}
			if fr.wrapped {
				bw.WriteString("</T>")
			}
		case tokTSOpen:
			closeStart()
			fmt.Fprintf(bw, `<T t="%s">`, t.data)
			inGroup = true
		case tokTSClose:
			bw.WriteString("</T>")
			inGroup = false
		}
	}
	if tr.err != nil {
		return tr.err
	}
	bw.WriteString("</root></T>")
	return bw.Flush()
}

func xmlEscape(w *bufio.Writer, s string, attr bool) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			w.WriteString("&amp;")
		case '<':
			w.WriteString("&lt;")
		case '>':
			w.WriteString("&gt;")
		case '"':
			if attr {
				w.WriteString("&quot;")
			} else {
				w.WriteByte('"')
			}
		case '\n':
			if attr {
				w.WriteString("&#10;")
			} else {
				w.WriteByte('\n')
			}
		case '\t':
			if attr {
				w.WriteString("&#9;")
			} else {
				w.WriteByte('\t')
			}
		default:
			w.WriteByte(s[i])
		}
	}
}
