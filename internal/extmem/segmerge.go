package extmem

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"xarch/internal/fsio"
	"xarch/internal/intervals"
	"xarch/internal/keys"
)

// Segment-local merge (phase 4 of AddVersion): instead of rewriting one
// monolithic archive file end-to-end, the sorted version is merged into
// the segmented layout root by root. Segments whose key range does not
// overlap the incoming children — and which carry no inherited
// timestamps that the new version would terminate — are left untouched
// on disk and re-linked into the fresh key directory; only overlapping
// segments are stream-merged into new files. An Add that changes a small
// key range therefore rewrites O(overlap) bytes, not O(archive).

// MergeStats reports the segment work of the most recent AddVersion.
type MergeStats struct {
	SegmentsReused    int // linked into the new directory unchanged
	SegmentsRewritten int // old segments stream-merged into new files
	SegmentsCreated   int // new segment files written
}

// segMerge carries the state of one segmented merge pass.
type segMerge struct {
	ar       *Archiver
	base     *keyDirectory // directory the version merges against
	i        int
	newRoot  *intervals.Set
	stats    MergeStats
	newFiles []string
	plans    map[*segmentRecord]*segPlan
}

// segPlan is the planning pass's verdict for one segment: whether the
// incoming version forces a rewrite, and how many of the segment's
// inherited-timestamp entries were matched by byte-identical incoming
// children (a segment is reusable only when that covers all of them —
// any unmatched inherited entry needs its timestamp terminated).
type segPlan struct {
	dirty        bool
	cleanMatched int
}

func segInherited(seg *segmentRecord) int {
	n := 0
	for i := range seg.entries {
		if seg.entries[i].timeStr == "" {
			n++
		}
	}
	return n
}

// reusable reports whether the planning pass cleared the segment: every
// incoming child in its range is byte-identical to its stored subtree
// (so the merged output equals the stored bytes), no child is inserted
// or deleted in the range, and no timestamp changes.
func (m *segMerge) reusable(seg *segmentRecord) bool {
	pl := m.plans[seg]
	if pl == nil {
		// No incoming child touched this range: reusable unless an
		// inherited timestamp must be terminated.
		return segInherited(seg) == 0
	}
	return !pl.dirty && pl.cleanMatched == segInherited(seg)
}

// mergedTime applies the §4.2 timestamp rule for a node present in both
// archive and version: an explicit archive timestamp gains version i and
// collapses back to inherited ("") when it catches up with the parent's
// effective timestamp. It returns the node's new effective timestamp and
// its stored form.
func mergedTime(atData string, parentEff *intervals.Set, i int) (*intervals.Set, string, error) {
	if atData == "" {
		return parentEff, "", nil
	}
	t, err := intervals.Parse(atData)
	if err != nil {
		return nil, "", fmt.Errorf("extmem: bad archive timestamp %q: %w", atData, err)
	}
	t.Add(i)
	if t.Equal(parentEff) {
		return parentEff, "", nil
	}
	return t, t.String(), nil
}

// mergedTimeTok is mergedTime over a decoded archive token: a token from
// a v2 segment carries its timestamp pre-parsed in the shared segment
// dictionary, which must be cloned — never mutated — before version i is
// added.
func mergedTimeTok(at token, parentEff *intervals.Set, i int) (*intervals.Set, string, error) {
	if at.data == "" {
		return parentEff, "", nil
	}
	if at.time == nil {
		return mergedTime(at.data, parentEff, i)
	}
	t := at.time.Clone()
	t.Add(i)
	if t.Equal(parentEff) {
		return parentEff, "", nil
	}
	return t, t.String(), nil
}

// mergeIntoSegments merges the sorted version in sortedPath as version i
// against the base directory — usually the committed ar.curDir, but a
// group commit (AddVersionBatch) chains the uncommitted directory of the
// previous batch member through here. It returns the fresh directory,
// the merge stats and the list of segment files created (for cleanup if
// the commit fails).
func (ar *Archiver) mergeIntoSegments(base *keyDirectory, sortedPath string, i int) (*keyDirectory, MergeStats, []string, error) {
	old := base
	newRoot := old.rootTime.Clone()
	newRoot.Add(i)
	m := &segMerge{ar: ar, base: base, i: i, newRoot: newRoot}

	if err := m.planReuse(sortedPath); err != nil {
		return nil, m.stats, nil, err
	}

	df, err := ar.fs.Open(sortedPath)
	if err != nil {
		return nil, m.stats, nil, fmt.Errorf("extmem: %w", err)
	}
	defer df.Close()
	d := newTokenReader(df)
	defer d.release()

	out := &keyDirectory{versions: i, rootTime: newRoot}
	oi := 0
	for {
		var dt token
		dOK := false
		if t, ok := d.peek(); ok {
			if t.op != tokOpen {
				return nil, m.stats, m.newFiles, fmt.Errorf("extmem: unexpected token %#x at version root", t.op)
			}
			dt, dOK = t, true
		}
		aOK := oi < len(old.roots)
		var rec *rootRecord
		switch {
		case aOK && dOK:
			r := old.roots[oi]
			dn, nerr := ar.dict.name(dt.tag)
			if nerr != nil {
				return nil, m.stats, m.newFiles, nerr
			}
			switch cmp := compareLabels(r.name, r.key, dn, dt.key); {
			case cmp == 0:
				rec, err = m.mergeRoot(r, d)
				oi++
			case cmp < 0:
				rec, err = m.terminateRoot(r)
				oi++
			default:
				rec, err = m.newRootFromVersion(d, dn, dt)
			}
		case aOK:
			rec, err = m.terminateRoot(old.roots[oi])
			oi++
		case dOK:
			dn, nerr := ar.dict.name(dt.tag)
			if nerr != nil {
				return nil, m.stats, m.newFiles, nerr
			}
			rec, err = m.newRootFromVersion(d, dn, dt)
		default:
			if d.err != nil {
				return nil, m.stats, m.newFiles, d.err
			}
			return out, m.stats, m.newFiles, nil
		}
		if err != nil {
			return nil, m.stats, m.newFiles, err
		}
		out.roots = append(out.roots, rec)
	}
}

// newWriter returns a segment-set writer for rec that records every
// created file for cleanup (at creation, so failed merges remove
// partial files too) and appends finished segments to rec.
func (m *segMerge) newWriter(rec *rootRecord, raw bool) *segmentSetWriter {
	return newSegmentSetWriter(m.ar, rec, raw,
		func(sr *segmentRecord) {
			rec.segs = append(rec.segs, sr)
			m.stats.SegmentsCreated++
		},
		func(name string) {
			m.newFiles = append(m.newFiles, name)
		})
}

// terminateRoot handles a root absent from the new version: an inherited
// timestamp becomes explicit at newRoot−{i} (§4.2 step (b)). Non-raw
// roots change only in the directory — every segment is reused; a raw
// root with an inherited timestamp must be rewritten because its open
// token (and timestamp) live in the segment bytes.
func (m *segMerge) terminateRoot(r *rootRecord) (*rootRecord, error) {
	out := &rootRecord{name: r.name, tag: r.tag, key: r.key, timeStr: r.timeStr, attrs: r.attrs, raw: r.raw}
	if r.timeStr == "" {
		out.timeStr = m.newRoot.Without(m.i).String()
	}
	if !r.raw || r.timeStr != "" {
		out.segs = r.segs
		m.stats.SegmentsReused += len(r.segs)
		return out, nil
	}
	// Raw root gaining an explicit timestamp: re-emit the stored subtree
	// with the new open token.
	ds := &dirStream{fs: m.ar.fs, dir: m.ar.dir, parts: rootParts(r), dicts: m.ar.segDicts, counter: &m.ar.bytesRead}
	defer ds.Close()
	a := newDirTokenReader(ds)
	defer a.release()
	at, ok := a.take()
	if !ok || at.op != tokOpen {
		return nil, corruptf("raw root %s has no open token", r.name)
	}
	sw := m.newWriter(out, true)
	sw.open()
	sw.out.open(at.tag, at.key, out.timeStr)
	if err := copyBalancedTo(a, sw.out, true); err != nil {
		sw.finish()
		return nil, err
	}
	m.stats.SegmentsRewritten += len(r.segs)
	if err := sw.finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// newRootFromVersion copies a version-only root: the root's timestamp is
// {i}, its children are copied verbatim (inheriting it), exactly like
// the monolithic merge's copyVersionChild at the top level.
func (m *segMerge) newRootFromVersion(d *tokenReader, dn string, dt token) (*rootRecord, error) {
	out := &rootRecord{
		name: dn, tag: dt.tag, key: dt.key,
		timeStr: intervals.New(m.i).String(),
		raw:     m.ar.spec.IsFrontier(keys.Path([]string{dn})),
	}
	d.take() // the root open
	if out.raw {
		sw := m.newWriter(out, true)
		sw.open()
		sw.out.open(dt.tag, dt.key, out.timeStr)
		if err := copyBalancedTo(d, sw.out, true); err != nil {
			sw.finish()
			return nil, err
		}
		return out, sw.finish()
	}
	for _, t := range drainAttrs(d) {
		an, err := m.ar.dict.name(t.tag)
		if err != nil {
			return nil, err
		}
		out.attrs = append(out.attrs, attrRec{name: an, tag: t.tag, value: t.data})
	}
	sw := m.newWriter(out, false)
	if err := m.copyChildrenVerbatim(sw, d); err != nil {
		sw.finish()
		return nil, err
	}
	if err := sw.finish(); err != nil {
		return nil, err
	}
	if t, ok := d.take(); !ok || t.op != tokClose {
		return nil, fmt.Errorf("extmem: version stream missing close at /%s", dn)
	}
	return out, nil
}

// copyChildrenVerbatim copies the sibling subtrees at the cursor into sw
// unchanged (stopping at the balancing close, which it does not
// consume), recording one entry per subtree.
func (m *segMerge) copyChildrenVerbatim(sw *segmentSetWriter, tr *tokenReader) error {
	for {
		t, ok := tr.peek()
		if !ok || t.op == tokClose {
			return tr.err
		}
		if t.op != tokOpen {
			return corruptf("unexpected token %#x at keyed level", t.op)
		}
		tr.take()
		name, err := m.ar.dict.name(t.tag)
		if err != nil {
			return err
		}
		sw.beginChild(name, t.tag, t.key, t.data)
		sw.out.open(t.tag, t.key, t.data)
		if err := copyBalancedTo(tr, sw.out, true); err != nil {
			return err
		}
		sw.endChild()
		if sw.err != nil {
			return sw.err
		}
	}
}

// mergeRoot merges a root present in both archive and version.
func (m *segMerge) mergeRoot(r *rootRecord, d *tokenReader) (*rootRecord, error) {
	eff, timeStr, err := mergedTime(r.timeStr, m.newRoot, m.i)
	if err != nil {
		return nil, err
	}
	out := &rootRecord{name: r.name, tag: r.tag, key: r.key, timeStr: timeStr, attrs: r.attrs, raw: r.raw}
	sm := &streamMerger{dict: m.ar.dict, spec: m.ar.spec, i: m.i}

	if r.raw {
		// Frontier root: record-sized by the §6 contract — merge the two
		// bodies with the standard frontier rules into one fresh segment.
		ds := &dirStream{fs: m.ar.fs, dir: m.ar.dir, parts: rootParts(r), dicts: m.ar.segDicts, counter: &m.ar.bytesRead}
		defer ds.Close()
		a := newDirTokenReader(ds)
		defer a.release()
		sw := m.newWriter(out, true)
		sw.open()
		sm.out = sw.out
		if err := sm.mergeEqual(a, d, m.newRoot, []string{r.name}); err != nil {
			sw.finish()
			return nil, err
		}
		m.stats.SegmentsRewritten += len(r.segs)
		return out, sw.finish()
	}

	d.take() // the version root open
	dAttrs := drainAttrs(d)
	if !attrRecsEqual(r.attrs, dAttrs) {
		return nil, fmt.Errorf("extmem: attributes of /%s differ between archive and version %d", r.name, m.i)
	}
	sw := m.newWriter(out, false)
	sm.out = sw.out
	if err := m.mergeChildren(sw, sm, r, out, d, eff); err != nil {
		sw.finish()
		return nil, err
	}
	if err := sw.finish(); err != nil {
		return nil, err
	}
	if t, ok := d.take(); !ok || t.op != tokClose {
		return nil, fmt.Errorf("extmem: version stream missing close at /%s", r.name)
	}
	return out, nil
}

// mergeChildren merges the version's children (up to the root's close)
// into the root's segments, reusing every segment whose key range the
// version does not touch.
func (m *segMerge) mergeChildren(sw *segmentSetWriter, sm *streamMerger, r, out *rootRecord, d *tokenReader, eff *intervals.Set) error {
	path := []string{out.name}
	dPeek := func() (string, token, bool, error) {
		t, ok := d.peek()
		if !ok || t.op != tokOpen {
			return "", token{}, false, d.err
		}
		n, err := m.ar.dict.name(t.tag)
		return n, t, err == nil, err
	}
	for si := 0; si < len(r.segs); si++ {
		seg := r.segs[si]
		hasHi := si+1 < len(r.segs)
		var hiName string
		var hiKey *tkey
		if hasHi {
			hiName, hiKey = r.segs[si+1].firstLabel()
		}
		inRange := func(n string, k *tkey) bool {
			return !hasHi || compareLabels(n, k, hiName, hiKey) < 0
		}
		if m.reusable(seg) {
			// The planning pass proved the merged output would equal the
			// stored bytes: consume the (byte-identical) incoming
			// children of this range and link the segment unchanged.
			// Close any partial output first so the directory keeps the
			// key order.
			sw.closeCurrent()
			if sw.err != nil {
				return sw.err
			}
			for {
				dn, dt, dOK, err := dPeek()
				if err != nil {
					return err
				}
				if !dOK || !inRange(dn, dt.key) {
					break
				}
				d.take()
				if err := d.discardSubtree(); err != nil {
					return err
				}
			}
			out.segs = append(out.segs, seg)
			m.stats.SegmentsReused++
			continue
		}
		m.stats.SegmentsRewritten++
		ds := &dirStream{fs: m.ar.fs, dir: m.ar.dir, parts: []streamPart{{seg: seg, off: 0, n: seg.payload}}, dicts: m.ar.segDicts, counter: &m.ar.bytesRead}
		a := newDirTokenReader(ds)
		err := m.mergeChildLevel(sw, sm, a, d, inRange, eff, path)
		a.release()
		ds.Close()
		if err != nil {
			return err
		}
	}
	// Children arriving after the last segment's range (only possible
	// when the root had no segments at all).
	return m.mergeChildLevel(sw, sm, nil, d, func(string, *tkey) bool { return true }, eff, path)
}

// mergeChildLevel is the bounded sibling merge of one segment's subtrees
// (a; nil for none) with the version children d accepts by inRange. It
// brackets every emitted child with entry recording on sw.
func (m *segMerge) mergeChildLevel(sw *segmentSetWriter, sm *streamMerger, a, d *tokenReader, inRange func(string, *tkey) bool, eff *intervals.Set, path []string) error {
	for {
		var at token
		aOK := false
		var an string
		if a != nil {
			if t, ok := a.peek(); ok && t.op == tokOpen {
				n, err := m.ar.dict.name(t.tag)
				if err != nil {
					return err
				}
				at, an, aOK = t, n, true
			} else if a.err != nil {
				return a.err
			}
		}
		var dt token
		dOK := false
		var dn string
		if t, ok := d.peek(); ok && t.op == tokOpen {
			n, err := m.ar.dict.name(t.tag)
			if err != nil {
				return err
			}
			if inRange(n, t.key) {
				dt, dn, dOK = t, n, true
			}
		} else if d.err != nil {
			return d.err
		}
		var err error
		switch {
		case aOK && dOK:
			switch cmp := compareLabels(an, at.key, dn, dt.key); {
			case cmp == 0:
				_, ts, terr := mergedTimeTok(at, eff, m.i)
				if terr != nil {
					return terr
				}
				sw.beginChild(an, at.tag, at.key, ts)
				err = sm.mergeEqual(a, d, eff, append(path, an))
			case cmp < 0:
				err = m.copyArchiveChildEntry(sw, sm, a, at, an, eff)
			default:
				sw.beginChild(dn, dt.tag, dt.key, intervals.New(m.i).String())
				err = sm.copyVersionChild(d)
			}
		case aOK:
			err = m.copyArchiveChildEntry(sw, sm, a, at, an, eff)
		case dOK:
			sw.beginChild(dn, dt.tag, dt.key, intervals.New(m.i).String())
			err = sm.copyVersionChild(d)
		default:
			return nil
		}
		if err != nil {
			return err
		}
		sw.endChild()
		if sw.err != nil {
			return sw.err
		}
	}
}

func (m *segMerge) copyArchiveChildEntry(sw *segmentSetWriter, sm *streamMerger, a *tokenReader, at token, an string, eff *intervals.Set) error {
	ts := at.data
	if ts == "" {
		ts = eff.Without(m.i).String()
	}
	sw.beginChild(an, at.tag, at.key, ts)
	return sm.copyArchiveChild(a, eff)
}

// attrRecsEqual compares the root's recorded attributes with the
// version's attribute tokens.
func attrRecsEqual(a []attrRec, b []token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].tag != b[i].tag || a[i].value != b[i].data {
			return false
		}
	}
	return true
}

// copyBalancedTo copies tokens verbatim until the close balancing the
// already-consumed open; the close is emitted when emitClose is set.
func copyBalancedTo(r *tokenReader, tw tokenSink, emitClose bool) error {
	depth := 1
	for {
		t, ok := r.take()
		if !ok {
			return fmt.Errorf("extmem: truncated subtree")
		}
		switch t.op {
		case tokOpen:
			depth++
		case tokClose:
			depth--
			if depth == 0 {
				if emitClose {
					tw.close()
				}
				return nil
			}
		}
		tw.writeToken(t)
	}
}

// ---------------------------------------------------------------------------
// Planning pass: which segments can the merge reuse?

// planReuse scans the sorted version once, classifying every segment of
// every matched root: an incoming child that is byte-identical to its
// stored subtree (same label, inherited timestamp, same bytes) leaves
// the stored bytes untouched by the §4.2 merge rules, so a segment whose
// range sees only such children — and whose inherited timestamps are all
// covered by them — can be linked into the new directory without being
// read again or rewritten. The comparison is exact (a compare-tee rides
// the scan, checking each child's bytes against the stored section as
// they stream past), never a fingerprint; the sorted version is read
// exactly once.
func (m *segMerge) planReuse(sortedPath string) error {
	m.plans = map[*segmentRecord]*segPlan{}
	f, err := m.ar.fs.Open(sortedPath)
	if err != nil {
		return fmt.Errorf("extmem: %w", err)
	}
	defer f.Close()
	pr := &posReader{br: bufio.NewReaderSize(f, tokenBufSize)}
	roots := m.base.roots
	oi := 0
	for {
		op, ok, err := pr.peekByte()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if op != tokOpen {
			return corruptf("unexpected token %#x at version root", op)
		}
		pr.byte()
		tag, key, _, err := pr.openPayload(true)
		if err != nil {
			return err
		}
		name, err := m.ar.dict.name(tag)
		if err != nil {
			return err
		}
		for oi < len(roots) && compareLabels(roots[oi].name, roots[oi].key, name, key) < 0 {
			oi++
		}
		if oi < len(roots) && !roots[oi].raw && compareLabels(roots[oi].name, roots[oi].key, name, key) == 0 {
			err = m.planRoot(pr, roots[oi])
			oi++
		} else {
			if oi < len(roots) && compareLabels(roots[oi].name, roots[oi].key, name, key) == 0 {
				oi++ // raw root: always rewritten, nothing to plan
			}
			err = pr.skipBalanced(1)
		}
		if err != nil {
			return err
		}
	}
}

// planRoot classifies the children of one matched, non-raw root. The
// cursor stands right after the root's open token; planRoot consumes
// attributes, every child subtree and the root's close. Each candidate
// child is byte-compared against its stored subtree by arming the
// scanner's compare-tee, so the child's bytes are consumed and compared
// in the same pass.
func (m *segMerge) planRoot(pr *posReader, r *rootRecord) error {
	plan := func(s *segmentRecord) *segPlan {
		p := m.plans[s]
		if p == nil {
			p = &segPlan{}
			m.plans[s] = p
		}
		return p
	}
	// Attributes of the root.
	for {
		op, ok, err := pr.peekByte()
		if err != nil {
			return err
		}
		if !ok || op != tokAttr {
			break
		}
		pr.byte()
		if _, err := pr.varint(); err != nil {
			return err
		}
		if err := pr.skipStr(); err != nil {
			return err
		}
	}
	segs := r.segs
	si, ei := 0, 0
	var segF fsio.File
	defer func() {
		if segF != nil {
			segF.Close()
		}
	}()
	cmp := &sectionComparer{scratch: make([]byte, 32*1024)}
	// The scanner hands the comparer many one-byte writes (opcodes);
	// buffering batches them into chunked ReadAt compares.
	cmpBuf := bufio.NewWriterSize(cmp, 32*1024)
	// v2 segments store interned tokens, so their bytes cannot be compared
	// with the inline version stream directly: the stored entry is
	// transcoded to the canonical inline encoding once, then the incoming
	// child's bytes are checked against that buffer.
	mem := &memComparer{}
	var entryBuf bytes.Buffer
	var openBuf bytes.Buffer
	for {
		op, ok, err := pr.peekByte()
		if err != nil {
			return err
		}
		if !ok {
			return corruptf("version stream ends inside /%s", r.name)
		}
		if op == tokClose {
			pr.byte()
			return nil
		}
		if op != tokOpen {
			return corruptf("unexpected token %#x at keyed level", op)
		}
		// Record the open token's bytes: whether (and against what) to
		// compare is known only once the child's label is parsed.
		openBuf.Reset()
		pr.sink = &openBuf
		pr.byte()
		tag, key, _, err := pr.openPayload(true)
		pr.sink = nil
		if err != nil {
			return err
		}
		name, err := m.ar.dict.name(tag)
		if err != nil {
			return err
		}
		if len(segs) == 0 {
			// Fresh root level: no segments to classify.
			if err := pr.skipBalanced(1); err != nil {
				return err
			}
			continue
		}
		// Ownership: the child belongs to the last segment whose first
		// label does not exceed it (mirroring the merge's ranges).
		for si+1 < len(segs) {
			fn, fk := segs[si+1].firstLabel()
			if compareLabels(name, key, fn, fk) >= 0 {
				si++
				ei = 0
				if segF != nil {
					segF.Close()
					segF = nil
				}
			} else {
				break
			}
		}
		seg := segs[si]
		for ei < len(seg.entries) && compareLabels(seg.entries[ei].name, seg.entries[ei].key, name, key) < 0 {
			ei++
		}
		if ei >= len(seg.entries) || compareLabels(seg.entries[ei].name, seg.entries[ei].key, name, key) != 0 {
			plan(seg).dirty = true // inserted child in this range
			if err := pr.skipBalanced(1); err != nil {
				return err
			}
			continue
		}
		e := &seg.entries[ei]
		ei++
		if e.timeStr != "" {
			plan(seg).dirty = true // the merge will restamp this child
			if err := pr.skipBalanced(1); err != nil {
				return err
			}
			continue
		}
		if seg.format == segFormatV2 {
			if err := m.inlineEntry(seg, e, &entryBuf); err != nil {
				return err
			}
			mem.reset(entryBuf.Bytes())
			cmpBuf.Reset(mem)
			if _, err := cmpBuf.Write(openBuf.Bytes()); err != nil {
				return err
			}
			pr.sink = cmpBuf
			err = pr.skipBalanced(1)
			pr.sink = nil
			if err != nil {
				return err
			}
			if err := cmpBuf.Flush(); err != nil {
				return err
			}
			if mem.equal() {
				plan(seg).cleanMatched++
			} else {
				plan(seg).dirty = true
			}
			continue
		}
		if segF == nil {
			segF, err = m.ar.fs.Open(filepath.Join(m.ar.dir, seg.file))
			if err != nil {
				return fmt.Errorf("extmem: %w", err)
			}
		}
		cmp.reset(segF, seg.dataOff+e.offset, e.size)
		cmpBuf.Reset(cmp)
		if _, err := cmpBuf.Write(openBuf.Bytes()); err != nil {
			return err
		}
		pr.sink = cmpBuf
		err = pr.skipBalanced(1)
		pr.sink = nil
		if err != nil {
			return err
		}
		if err := cmpBuf.Flush(); err != nil {
			return err
		}
		m.ar.bytesRead.Add(e.size - cmp.rem)
		if cmp.equal() {
			plan(seg).cleanMatched++
		} else {
			plan(seg).dirty = true
		}
	}
}

// inlineEntry renders one stored v2 entry subtree in the canonical
// inline (v1) token encoding — the encoding the sorted version stream
// uses — so the planning pass can byte-compare across segment formats.
func (m *segMerge) inlineEntry(seg *segmentRecord, e *childEntry, buf *bytes.Buffer) error {
	buf.Reset()
	ds := &dirStream{fs: m.ar.fs, dir: m.ar.dir, parts: entryParts(seg, e), dicts: m.ar.segDicts, counter: &m.ar.bytesRead}
	defer ds.Close()
	tr := newDirTokenReader(ds)
	defer tr.release()
	tw := newTokenWriter(buf)
	defer tw.release()
	for {
		t, ok := tr.take()
		if !ok {
			break
		}
		tw.writeToken(t)
	}
	if tr.err != nil {
		return tr.err
	}
	return tw.flush()
}

// memComparer checks a written byte stream against a fixed in-memory
// section, the v2 counterpart of sectionComparer.
type memComparer struct {
	want     []byte
	mismatch bool
}

func (c *memComparer) reset(b []byte) { c.want, c.mismatch = b, false }

func (c *memComparer) equal() bool { return !c.mismatch && len(c.want) == 0 }

func (c *memComparer) Write(p []byte) (int, error) {
	n := len(p)
	if c.mismatch {
		return n, nil
	}
	if len(p) > len(c.want) || !bytes.Equal(c.want[:len(p)], p) {
		c.mismatch = true
		return n, nil
	}
	c.want = c.want[len(p):]
	return n, nil
}

// sectionComparer is the planning pass's armed compare-tee: the bytes of
// one incoming child subtree are checked, as the scanner consumes them,
// against a stored section of a segment file. Any length or content
// difference flips mismatch; equality holds only when the section was
// consumed exactly.
type sectionComparer struct {
	f        fsio.File
	off      int64
	rem      int64
	mismatch bool
	scratch  []byte
}

func (c *sectionComparer) reset(f fsio.File, off, n int64) {
	c.f, c.off, c.rem, c.mismatch = f, off, n, false
}

func (c *sectionComparer) equal() bool { return !c.mismatch && c.rem == 0 }

func (c *sectionComparer) Write(p []byte) (int, error) {
	n := len(p)
	if c.mismatch {
		return n, nil
	}
	if int64(n) > c.rem {
		c.mismatch = true // incoming subtree outgrew the stored section
		return n, nil
	}
	for len(p) > 0 {
		chunk := len(p)
		if chunk > len(c.scratch) {
			chunk = len(c.scratch)
		}
		if _, err := c.f.ReadAt(c.scratch[:chunk], c.off); err != nil {
			return n, fmt.Errorf("extmem: %w", err)
		}
		if !bytes.Equal(c.scratch[:chunk], p[:chunk]) {
			c.mismatch = true
			return n, nil
		}
		c.off += int64(chunk)
		c.rem -= int64(chunk)
		p = p[chunk:]
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// One-time migration from the monolithic archive.tok layout

// migrateMonolithic splits a v1 archive token file into the segmented
// layout, preserving the token bytes exactly: the concatenated segment
// stream reproduces the old file byte for byte.
func (ar *Archiver) migrateMonolithic(tokPath string, versions int, rootTime *intervals.Set) (*keyDirectory, []string, error) {
	m := &segMerge{ar: ar, i: versions, newRoot: rootTime}
	f, err := ar.fs.Open(tokPath)
	if err != nil {
		return nil, nil, fmt.Errorf("extmem: %w", err)
	}
	defer f.Close()
	tr := newTokenReader(f)
	defer tr.release()

	out := &keyDirectory{versions: versions, rootTime: rootTime}
	for {
		t, ok := tr.take()
		if !ok {
			break
		}
		if t.op != tokOpen {
			return nil, m.newFiles, corruptf("unexpected token %#x at archive root", t.op)
		}
		name, err := ar.dict.name(t.tag)
		if err != nil {
			return nil, m.newFiles, err
		}
		rec := &rootRecord{
			name: name, tag: t.tag, key: t.key, timeStr: t.data,
			raw: ar.spec.IsFrontier(keys.Path([]string{name})),
		}
		if rec.raw {
			sw := m.newWriter(rec, true)
			sw.open()
			sw.out.open(t.tag, t.key, t.data)
			if err := copyBalancedTo(tr, sw.out, true); err != nil {
				sw.finish()
				return nil, m.newFiles, err
			}
			if err := sw.finish(); err != nil {
				return nil, m.newFiles, err
			}
		} else {
			for _, a := range drainAttrs(tr) {
				an, err := ar.dict.name(a.tag)
				if err != nil {
					return nil, m.newFiles, err
				}
				rec.attrs = append(rec.attrs, attrRec{name: an, tag: a.tag, value: a.data})
			}
			sw := m.newWriter(rec, false)
			if err := m.copyChildrenVerbatim(sw, tr); err != nil {
				sw.finish()
				return nil, m.newFiles, err
			}
			if err := sw.finish(); err != nil {
				return nil, m.newFiles, err
			}
			if t, ok := tr.take(); !ok || t.op != tokClose {
				return nil, m.newFiles, corruptf("missing close at /%s", name)
			}
		}
		out.roots = append(out.roots, rec)
	}
	if tr.err != nil {
		return nil, m.newFiles, tr.err
	}
	return out, m.newFiles, nil
}

// ---------------------------------------------------------------------------
// One-time migration from format-1 segment files

// migrateSegmentsV2 rewrites every format-1 segment of the committed
// directory as a format-2 segment (one output file per source segment,
// token content and entry metadata preserved) and commits the new
// directory, exactly like the monolithic migration: the key-directory
// rename is the commit point, and a crash on either side of it leaves a
// valid all-v1 or all-v2 layout plus orphan files the next Open sweeps.
func (ar *Archiver) migrateSegmentsV2() error {
	d := ar.curDir
	needs := false
	for _, r := range d.roots {
		for _, s := range r.segs {
			if s.format != segFormatV2 {
				needs = true
			}
		}
	}
	if !needs {
		return nil
	}
	out := &keyDirectory{versions: d.versions, rootTime: d.rootTime}
	var newFiles []string
	onCreate := func(name string) { newFiles = append(newFiles, name) }
	fail := func(err error) error {
		for _, f := range newFiles {
			ar.fs.Remove(filepath.Join(ar.dir, f))
		}
		return err
	}
	for _, r := range d.roots {
		nr := &rootRecord{
			name: r.name, tag: r.tag, key: r.key, timeStr: r.timeStr,
			attrs: r.attrs, raw: r.raw, time: r.time,
		}
		for _, seg := range r.segs {
			if seg.format == segFormatV2 {
				nr.segs = append(nr.segs, seg)
				continue
			}
			ns, err := ar.transcodeSegment(nr, r, seg, onCreate)
			if err != nil {
				return fail(err)
			}
			nr.segs = append(nr.segs, ns)
		}
		out.roots = append(out.roots, nr)
	}
	if err := ar.commitState(out); err != nil {
		return fail(err)
	}
	ar.curDir = out
	return nil
}

// transcodeSegment rewrites one v1 segment as a single v2 segment with
// identical token content: entries keep their labels, keys, and
// timestamps; only offsets (and the encoding) change.
func (ar *Archiver) transcodeSegment(newRoot, r *rootRecord, seg *segmentRecord, onCreate func(string)) (*segmentRecord, error) {
	var out *segmentRecord
	sw := newSegmentSetWriter(ar, newRoot, r.raw,
		func(sr *segmentRecord) { out = sr }, onCreate)
	sw.target = 1 << 62 // 1:1 segment mapping: never roll mid-source
	ds := &dirStream{fs: ar.fs, dir: ar.dir, parts: []streamPart{{seg: seg, off: 0, n: seg.payload}}, dicts: ar.segDicts, counter: &ar.bytesRead}
	defer ds.Close()
	tr := newDirTokenReader(ds)
	defer tr.release()
	if r.raw {
		sw.open()
		for {
			t, ok := tr.take()
			if !ok {
				break
			}
			sw.out.writeToken(t)
		}
		if tr.err != nil {
			sw.finish()
			return nil, tr.err
		}
	} else {
		for ei := range seg.entries {
			e := &seg.entries[ei]
			t, ok := tr.take()
			if !ok || t.op != tokOpen {
				sw.finish()
				return nil, corruptf("segment %s: entry %d has no open token", seg.file, ei)
			}
			sw.beginChild(e.name, e.tag, e.key, e.timeStr)
			sw.out.open(t.tag, t.key, t.data)
			if err := copyBalancedTo(tr, sw.out, true); err != nil {
				sw.finish()
				return nil, err
			}
			sw.endChild()
			if sw.err != nil {
				break
			}
		}
	}
	if err := sw.finish(); err != nil {
		return nil, err
	}
	if out == nil {
		return nil, corruptf("segment %s: transcode produced no output", seg.file)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Directory rebuild from segment files (corrupt keydir.idx fallback)

// rebuildDirectory reconstructs the segment and entry tables by reading
// exactly the segment files the meta backup lists for each root — never
// globbing the directory, so crash orphans lying on disk cannot be
// woven into the rebuilt archive — and re-deriving entries (offsets,
// sizes, timestamps) from the payload tokens. meta also supplies the
// root records, which the payloads cannot (a root's timestamp lives
// only in the directory).
func (ar *Archiver) rebuildDirectory(meta *keyDirectory) (*keyDirectory, error) {
	out := &keyDirectory{versions: meta.versions, rootTime: meta.rootTime}
	for _, r := range meta.roots {
		rec := &rootRecord{name: r.name, key: r.key, timeStr: r.timeStr, attrs: r.attrs, raw: r.raw}
		for _, skel := range r.segs {
			si, hname, hkey, err := scanSegment(ar.fs, filepath.Join(ar.dir, skel.file), ar.dict)
			if err != nil {
				return nil, fmt.Errorf("extmem: rebuild %s: %w", skel.file, err)
			}
			if si.raw != r.raw || hname != r.name || compareKeys(hkey, r.key) != 0 {
				return nil, fmt.Errorf("extmem: rebuild: segment %s belongs to root %s, not %s", skel.file, hname, r.name)
			}
			rec.segs = append(rec.segs, si.rec)
		}
		out.roots = append(out.roots, rec)
	}
	return out, nil
}

// scanSegment reads one segment file end to end: header, payload CRC,
// and the entry table re-derived from the payload tokens. It returns the
// record plus the root label from the header. Format-2 payloads are
// decompressed (when compressed) and scanned against the segment
// dictionary; entry offsets are always in uncompressed payload space.
func scanSegment(fs fsio.FS, path string, dict *dictionary) (*segInfoResult, string, *tkey, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, "", nil, err
	}
	defer f.Close()
	h, err := readSegmentHeader(f)
	if err != nil {
		return nil, "", nil, err
	}
	rec := &segmentRecord{
		file: filepath.Base(path), format: h.format, dataOff: h.dataOff,
		payload: h.payload, crc: h.crc,
		stored: h.stored, storedCRC: h.storedCRC, dictLen: h.dictLen,
	}
	var payload io.Reader
	var blk blockReader
	if h.compressed {
		blk.reset(f, h.dict, 0, h.payload, nil)
		payload = &blk
	} else {
		if _, err := f.Seek(h.dataOff, io.SeekStart); err != nil {
			return nil, "", nil, err
		}
		payload = io.LimitReader(f, h.payload)
	}
	crc := crc32.NewIEEE()
	body := io.TeeReader(payload, crc)
	res := &segInfoResult{rec: rec, raw: h.raw}
	if h.raw {
		if _, err := io.Copy(io.Discard, body); err != nil {
			return nil, "", nil, err
		}
	} else {
		entries, err := scanEntries(body, h.dict)
		if err != nil {
			return nil, "", nil, err
		}
		if len(entries) == 0 {
			return nil, "", nil, fmt.Errorf("segment has no entries")
		}
		for i := range entries {
			name, err := dict.name(entries[i].tag)
			if err != nil {
				return nil, "", nil, err
			}
			entries[i].name = name
		}
		rec.entries = entries
	}
	if crc.Sum32() != h.crc {
		return nil, "", nil, fmt.Errorf("payload checksum mismatch")
	}
	return res, h.rootName, h.rootKey, nil
}

type segInfoResult = struct {
	rec *segmentRecord
	raw bool
}

// scanEntries walks a non-raw segment payload, recording each top-level
// subtree's label, timestamp, offset and size (names resolved by the
// caller through the dictionary). A non-nil segment dictionary switches
// the scanner to the v2 interned grammar.
func scanEntries(r io.Reader, dict *segDict) ([]childEntry, error) {
	pr := &posReader{br: bufio.NewReaderSize(r, tokenBufSize), dict: dict}
	var entries []childEntry
	depth := 0
	for {
		start := pr.pos
		op, err := pr.byte()
		if err == io.EOF {
			if depth != 0 {
				return nil, fmt.Errorf("unbalanced segment payload")
			}
			return entries, nil
		}
		if err != nil {
			return nil, err
		}
		switch op {
		case tokOpen:
			if depth == 0 {
				tag, key, timeStr, err := pr.openPayload(true)
				if err != nil {
					return nil, err
				}
				entries = append(entries, childEntry{tag: tag, key: key, timeStr: timeStr, offset: start})
			} else {
				if _, _, _, err := pr.openPayload(false); err != nil {
					return nil, err
				}
			}
			depth++
		case tokClose:
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced segment payload")
			}
			if depth == 0 {
				entries[len(entries)-1].size = pr.pos - entries[len(entries)-1].offset
			}
		case tokText:
			if err := pr.skipStr(); err != nil {
				return nil, err
			}
		case tokTSOpen:
			if err := pr.tsPayload(); err != nil {
				return nil, err
			}
		case tokAttr:
			if err := pr.attrPayload(); err != nil {
				return nil, err
			}
		case tokTSClose:
		default:
			return nil, fmt.Errorf("unknown opcode %#x", op)
		}
	}
}

// posReader is a byte-position-tracking token scanner used by the
// directory rebuild and the merge planning pass, where exact payload
// offsets matter and the pooled lookahead reader cannot provide them.
// When sink is set, every consumed byte is forwarded to it — the
// planning pass arms it with a sectionComparer so scanning a subtree
// and comparing its bytes is one pass. A non-nil dict switches the
// scanner to the v2 interned grammar (keys, timestamps, and attribute
// values are varint ids), validating every id against the dictionary.
type posReader struct {
	br   *bufio.Reader
	pos  int64
	sink io.Writer
	dict *segDict
	one  [1]byte
}

func (p *posReader) byte() (byte, error) {
	b, err := p.br.ReadByte()
	if err == nil {
		p.pos++
		if p.sink != nil {
			p.one[0] = b
			if _, werr := p.sink.Write(p.one[:]); werr != nil {
				return b, werr
			}
		}
	}
	return b, err
}

// peekByte looks at the next opcode without consuming it; ok is false at
// end of stream.
func (p *posReader) peekByte() (byte, bool, error) {
	b, err := p.br.Peek(1)
	if err == io.EOF {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	return b[0], true, nil
}

// skipBalanced consumes tokens until the opens and closes balance out at
// the given starting depth.
func (p *posReader) skipBalanced(depth int) error {
	for depth > 0 {
		op, err := p.byte()
		if err != nil {
			return err
		}
		switch op {
		case tokOpen:
			if _, _, _, err := p.openPayload(false); err != nil {
				return err
			}
			depth++
		case tokClose:
			depth--
		case tokText:
			if err := p.skipStr(); err != nil {
				return err
			}
		case tokTSOpen:
			if err := p.tsPayload(); err != nil {
				return err
			}
		case tokAttr:
			if err := p.attrPayload(); err != nil {
				return err
			}
		case tokTSClose:
		default:
			return fmt.Errorf("extmem: unknown opcode %#x", op)
		}
	}
	return nil
}

// tsPayload consumes a tokTSOpen payload: an interned timestamp id under
// the v2 grammar, an inline string otherwise.
func (p *posReader) tsPayload() error {
	if p.dict == nil {
		return p.skipStr()
	}
	id, err := p.varint()
	if err != nil {
		return err
	}
	if id >= uint64(len(p.dict.times)) {
		return fmt.Errorf("dangling timestamp id %d (dictionary has %d)", id, len(p.dict.times))
	}
	return nil
}

// attrPayload consumes a tokAttr payload: name id plus interned value id
// (v2) or inline value string (v1).
func (p *posReader) attrPayload() error {
	if _, err := p.varint(); err != nil {
		return err
	}
	if p.dict == nil {
		return p.skipStr()
	}
	id, err := p.varint()
	if err != nil {
		return err
	}
	if id >= uint64(len(p.dict.values)) {
		return fmt.Errorf("dangling value id %d (dictionary has %d)", id, len(p.dict.values))
	}
	return nil
}

func (p *posReader) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := p.byte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}

func (p *posReader) str() (string, error) {
	n, err := p.varint()
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(p.br, buf); err != nil {
		return "", err
	}
	p.pos += int64(n)
	if p.sink != nil {
		if _, err := p.sink.Write(buf); err != nil {
			return "", err
		}
	}
	return string(buf), nil
}

func (p *posReader) skipStr() error {
	n, err := p.varint()
	if err != nil {
		return err
	}
	dst := io.Discard
	if p.sink != nil {
		dst = p.sink
	}
	if _, err := io.CopyN(dst, p.br, int64(n)); err != nil {
		return err
	}
	p.pos += int64(n)
	return nil
}

// readFull reads exactly len(buf) bytes, tracking position and feeding
// the sink like every other consuming read.
func (p *posReader) readFull(buf []byte) error {
	if _, err := io.ReadFull(p.br, buf); err != nil {
		return err
	}
	p.pos += int64(len(buf))
	if p.sink != nil {
		if _, err := p.sink.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// openPayload consumes the payload of an open token (after its opcode).
// With capture, the key and timestamp are materialized — for the v2
// grammar they resolve to the dictionary's shared key tuple and interned
// timestamp string.
func (p *posReader) openPayload(capture bool) (tag int, key *tkey, timeStr string, err error) {
	t, err := p.varint()
	if err != nil {
		return 0, nil, "", err
	}
	flags, err := p.byte()
	if err != nil {
		return 0, nil, "", err
	}
	if p.dict != nil {
		if flags&flagHasKey != 0 {
			id, err := p.varint()
			if err != nil {
				return 0, nil, "", err
			}
			if id >= uint64(len(p.dict.keys)) {
				return 0, nil, "", fmt.Errorf("dangling key id %d (dictionary has %d)", id, len(p.dict.keys))
			}
			if capture {
				key = p.dict.key(int(id))
			}
		}
		if flags&flagHasTime != 0 {
			id, err := p.varint()
			if err != nil {
				return 0, nil, "", err
			}
			if id >= uint64(len(p.dict.times)) {
				return 0, nil, "", fmt.Errorf("dangling timestamp id %d (dictionary has %d)", id, len(p.dict.times))
			}
			if capture {
				timeStr = p.dict.times[id]
			}
		}
		return int(t), key, timeStr, nil
	}
	if flags&flagHasKey != 0 {
		n, err := p.varint()
		if err != nil {
			return 0, nil, "", err
		}
		if capture {
			key = &tkey{}
		}
		for i := uint64(0); i < n; i++ {
			if capture {
				kp, err := p.str()
				if err != nil {
					return 0, nil, "", err
				}
				kc, err := p.str()
				if err != nil {
					return 0, nil, "", err
				}
				key.paths = append(key.paths, kp)
				key.canon = append(key.canon, kc)
			} else {
				if err := p.skipStr(); err != nil {
					return 0, nil, "", err
				}
				if err := p.skipStr(); err != nil {
					return 0, nil, "", err
				}
			}
		}
	}
	if flags&flagHasTime != 0 {
		if capture {
			timeStr, err = p.str()
		} else {
			err = p.skipStr()
		}
		if err != nil {
			return 0, nil, "", err
		}
	}
	return int(t), key, timeStr, nil
}
