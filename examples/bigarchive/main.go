// Big archive: the external-memory archiver (§6).
//
// Swiss-Prot versions reach hundreds of megabytes — far beyond the
// archiver's in-memory reach on the paper's 256 MB machine. This example
// archives Swiss-Prot-like releases through the external-memory pipeline
// (decompose → bounded-memory sorted runs → streaming merge) with an
// artificially tiny memory budget, so the multi-run machinery is visible.
//
// Both engines implement the same xarch.Store interface, so retrieval and
// history queries run directly against the external store — no manual
// export/reload step.
//
//	go run ./examples/bigarchive
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"xarch"
	"xarch/internal/datagen"
)

func main() {
	dir, err := os.MkdirTemp("", "xarch-bigarchive-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := datagen.DefaultSwissProt()
	cfg.Records = 80
	g := datagen.NewSwissProt(cfg)
	spec := datagen.SwissProtSpec()

	// A 500-token budget forces the run former to spill constantly — a
	// stand-in for a document 1000x larger than memory.
	const budget = 500
	// WithValidation(false) keeps ingest truly streaming: the releases
	// come from a trusted generator, so AddReader feeds the §6 pipeline
	// directly instead of parsing each release into a tree first.
	ar, err := xarch.OpenStore(dir, spec,
		xarch.WithMemoryBudget(budget), xarch.WithValidation(false))
	if err != nil {
		log.Fatal(err)
	}
	defer ar.Close()

	fmt.Printf("== External store in %s (budget: %d tokens) ==\n", dir, budget)
	var releases []string
	for rel := 1; rel <= 4; rel++ {
		doc := g.Next()
		text := doc.IndentedXML()
		releases = append(releases, text)
		// AddReader streams the release through the §6 pipeline; the
		// document is never held in memory as a tree.
		if err := ar.AddReader(strings.NewReader(text)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("release %d: %8d bytes -> %4d sorted runs merged\n",
			rel, len(text), ar.SortRuns())
	}

	// The archive body is key-range-partitioned segment files plus a
	// persistent key directory: an Add rewrites only the segments whose
	// key ranges the release touches, and selective queries seek through
	// the directory instead of scanning the archive.
	if ss, err := ar.StorageStats(); err == nil {
		fmt.Printf("storage: %d segments (%d bytes), %d directory entries; last add reused %d / rewrote %d segments\n",
			ss.Segments, ss.SegmentBytes, ss.DirectoryEntries, ss.LastAddReused, ss.LastAddRewritten)
	}

	var b strings.Builder
	if err := ar.Snapshot(&b); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narchive XML: %d bytes for %d releases\n", b.Len(), ar.Versions())

	// Retrieval runs against the external store itself, through the same
	// Store interface the in-memory engine implements.
	for rel := 1; rel <= len(releases); rel++ {
		got, err := ar.Version(rel)
		if err != nil {
			log.Fatal(err)
		}
		want, err := xarch.ParseXMLString(releases[rel-1])
		if err != nil {
			log.Fatal(err)
		}
		same, err := ar.SameVersion(want, got)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if !same {
			status = "MISMATCH"
		}
		fmt.Printf("release %d retrieval: %s (%d records)\n",
			rel, status, len(got.ChildrenNamed("Record")))
	}

	// Temporal history works on externally-built archives too.
	v1, err := ar.Version(1)
	if err != nil {
		log.Fatal(err)
	}
	pac := v1.Child("Record").ChildText("pac")
	h, err := ar.History("/ROOT/Record[pac=" + pac + "]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprotein %s exists at releases t=[%s]\n", pac, h)
}
