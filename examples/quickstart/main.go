// Quickstart: the paper's running example (§2, Figures 2-5).
//
// Archives the four versions of the company database, prints the archive
// XML (compare with Figure 5), retrieves past versions, and answers the
// temporal-history queries of Figure 4.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"xarch"
)

const spec = `
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
`

// The four versions of Figure 2.
var versions = []string{
	`<db><dept><name>finance</name></dept></db>`,

	`<db><dept><name>finance</name>
	   <emp><fn>Jane</fn><ln>Smith</ln></emp>
	 </dept></db>`,

	`<db>
	   <dept><name>finance</name>
	     <emp><fn>John</fn><ln>Doe</ln><sal>90K</sal><tel>123-4567</tel></emp>
	   </dept>
	   <dept><name>marketing</name>
	     <emp><fn>John</fn><ln>Doe</ln></emp>
	   </dept>
	 </db>`,

	`<db><dept><name>finance</name>
	   <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>
	   <emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal><tel>123-6789</tel><tel>112-3456</tel></emp>
	 </dept></db>`,
}

func main() {
	keySpec, err := xarch.ParseKeySpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	a := xarch.NewStore(keySpec)

	fmt.Println("== Archiving the four versions of Figure 2 ==")
	for i, src := range versions {
		doc, err := xarch.ParseXMLString(src)
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Add(doc); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("archived version %d\n", i+1)
	}

	fmt.Println("\n== The archive as XML (compare Figure 5) ==")
	if err := a.Snapshot(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Element histories (compare Figure 4) ==")
	for _, sel := range []string{
		"/db/dept[name=finance]",
		"/db/dept[name=marketing]",
		"/db/dept[name=finance]/emp[fn=John,ln=Doe]",
		"/db/dept[name=finance]/emp[fn=Jane,ln=Smith]",
		"/db/dept[name=finance]/emp[fn=Jane,ln=Smith]/tel[.=112-3456]",
	} {
		h, err := a.History(sel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-60s t=[%s]\n", sel, h)
	}

	fmt.Println("\n== John Doe's salary: content history ==")
	sel := "/db/dept[name=finance]/emp[fn=John,ln=Doe]/sal"
	changes, err := a.ContentHistory(sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("salary content changed at versions %v (90K at 3, 95K at 4)\n", changes)

	fmt.Println("\n== Retrieving version 2 from the archive ==")
	if err := a.WriteVersion(2, os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Round trip: snapshot and reload the archive ==")
	var buf strings.Builder
	if err := a.Snapshot(&buf); err != nil {
		log.Fatal(err)
	}
	reloaded, err := xarch.LoadStore(strings.NewReader(buf.String()), keySpec)
	if err != nil {
		log.Fatal(err)
	}
	h, err := reloaded.History("/db/dept[name=finance]/emp[fn=Jane,ln=Smith]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reload, Jane Smith still exists at t=[%s]\n", h)
}
