// Gene database: the paper's motivating example (§1, Figure 1).
//
// Two genes' data were accidentally swapped and later corrected. A
// minimum-edit-distance diff describes the correction as genes changing
// their ids and names — semantically nonsense. The key-based archive
// identifies genes by id, so it reports what actually happened: each
// gene's sequence and position were corrected, while ids and names
// persisted.
//
//	go run ./examples/genedb
package main

import (
	"fmt"
	"log"
	"strings"

	"xarch"
	"xarch/internal/diff"
)

const spec = `
(/, (genes, {}))
(/genes, (gene, {id}))
(/genes/gene, (name, {}))
(/genes/gene, (seq, {}))
(/genes/gene, (pos, {}))
`

const v1 = `<genes>
  <gene><id>6230</id><name>GRTM</name><seq>GTCG...</seq><pos>11A52</pos></gene>
  <gene><id>2953</id><name>ACV2</name><seq>AGTT...</seq><pos>08A96</pos></gene>
</genes>`

// Version 2 corrects the mix-up: gene 6230 gets the AGTT sequence, gene
// 2953 the GTCG sequence.
const v2 = `<genes>
  <gene><id>2953</id><name>ACV2</name><seq>GTCG...</seq><pos>11A52</pos></gene>
  <gene><id>6230</id><name>GRTM</name><seq>AGTT...</seq><pos>08A96</pos></gene>
</genes>`

func main() {
	fmt.Println("== What line diff says happened (Figure 1) ==")
	script := diff.Compute(strings.Split(v1, "\n"), strings.Split(v2, "\n"))
	fmt.Print(script.Format())
	fmt.Println(`(reads as: "gene GRTM changed its id to 2953 and renamed itself ACV2" — nonsense)`)

	keySpec, err := xarch.ParseKeySpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	a := xarch.NewStore(keySpec)
	for _, src := range []string{v1, v2} {
		doc, err := xarch.ParseXMLString(src)
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Add(doc); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\n== What the key-based archive says happened ==")
	for _, id := range []string{"6230", "2953"} {
		h, err := a.History("/genes/gene[id=" + id + "]")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gene %s exists at t=[%s]  — the gene itself never vanished\n", id, h)
		for _, field := range []string{"name", "seq", "pos"} {
			sel := "/genes/gene[id=" + id + "]/" + field
			changes, err := a.ContentHistory(sel)
			if err != nil {
				log.Fatal(err)
			}
			if len(changes) > 1 {
				fmt.Printf("  %-4s corrected at version %d\n", field, changes[len(changes)-1])
			} else {
				fmt.Printf("  %-4s unchanged since version %d\n", field, changes[0])
			}
		}
	}

	fmt.Println("\n== The archive itself ==")
	fmt.Print(archiveXML(a))
}

func archiveXML(a xarch.Store) string {
	var b strings.Builder
	if err := a.Snapshot(&b); err != nil {
		log.Fatal(err)
	}
	return b.String()
}
