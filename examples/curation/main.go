// Curated database: an OMIM-style workflow (§1-§2).
//
// OMIM publishes a new version almost daily but archives only
// occasionally, so the evidence behind a finding can be lost. This example
// simulates 30 daily versions of an OMIM-like database of genetic
// disorders, archives every one of them, and shows that:
//
//   - the whole month of history costs barely more than the latest
//     version alone (accretive data + timestamp inheritance);
//
//   - any day's snapshot is retrievable;
//
//   - the provenance of an individual record — when it appeared, when its
//     text was last revised — is a single query.
//
//     go run ./examples/curation
package main

import (
	"fmt"
	"log"
	"os"

	"xarch"
	"xarch/internal/datagen"
)

func main() {
	cfg := datagen.DefaultOMIM()
	cfg.Records = 300
	g := datagen.NewOMIM(cfg)

	a := xarch.NewStore(datagen.OMIMSpec())
	var lastSize int
	fmt.Println("== Archiving 30 daily versions ==")
	for day := 1; day <= 30; day++ {
		doc := g.Next()
		lastSize = len(doc.IndentedXML())
		if err := a.Add(doc); err != nil {
			log.Fatal(err)
		}
	}
	stats, err := a.Stats()
	if err != nil {
		log.Fatal(err)
	}
	compressed, err := a.CompressedSize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("versions archived      %d\n", stats.Versions)
	fmt.Printf("latest version size    %d bytes\n", lastSize)
	fmt.Printf("whole archive size     %d bytes (%.3fx the latest version)\n",
		stats.XMLBytes, float64(stats.XMLBytes)/float64(lastSize))
	fmt.Printf("compressed archive     %d bytes (%.3fx the latest version)\n",
		compressed, float64(compressed)/float64(lastSize))
	fmt.Printf("timestamp inheritance  %d of %d keyed nodes inherit (%.1f%%)\n",
		stats.InheritedTimestamps, stats.KeyedNodes,
		100*float64(stats.InheritedTimestamps)/float64(stats.KeyedNodes))

	// Retrieve day 15 exactly as published.
	v15, err := a.Version(15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== Day-15 snapshot retrieved: %d records ==\n", len(v15.ChildrenNamed("Record")))

	// Provenance of one record: find a record that gained contributors.
	first, err := a.Version(1)
	if err != nil {
		log.Fatal(err)
	}
	num := first.Child("Record").ChildText("Num")
	sel := "/ROOT/Record[Num=" + num + "]"
	h, err := a.History(sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== Provenance of record %s ==\n", num)
	fmt.Printf("record exists at t=[%s]\n", h)
	textChanges, err := a.ContentHistory(sel + "/Text")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("free-text revisions at versions %v\n", textChanges)

	// The store owns its indexes and keeps them fresh across Adds, so
	// the History call above already went through the §7.2 sorted key
	// lists and Version retrievals go through the §7.1 timestamp trees —
	// no manual index building, no stale results.
	if _, err := a.Version(1); err != nil {
		log.Fatal(err)
	}
	probes, naive := a.ProbeStats()
	fmt.Printf("\n== Timestamp-tree retrieval of day 1 ==\n")
	fmt.Printf("tree probes %d vs naive child scans %d\n", probes, naive)

	// The same month on the external engine: the on-disk archive stores
	// dictionary-interned, block-compressed segments, so its compressed
	// size is a real du(1)-style figure, comparable to the in-memory
	// engine's XMill estimate above.
	dir, err := os.MkdirTemp("", "curation-ext-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ext, err := xarch.OpenStore(dir, datagen.OMIMSpec(), xarch.WithSegmentCompression(true))
	if err != nil {
		log.Fatal(err)
	}
	defer ext.Close()
	g2 := datagen.NewOMIM(cfg)
	for day := 1; day <= 30; day++ {
		if err := ext.Add(g2.Next()); err != nil {
			log.Fatal(err)
		}
	}
	extCompressed, err := ext.CompressedSize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== External engine, same 30 versions ==\n")
	fmt.Printf("on-disk compressed     %d bytes (%.3fx the latest version)\n",
		extCompressed, float64(extCompressed)/float64(lastSize))
}
