package xarch

import (
	"errors"

	"xarch/internal/core"
	"xarch/internal/extmem"
	"xarch/internal/keys"
	"xarch/internal/qlang"
)

// Sentinel errors. Every error returned by a Store wraps one of these (or
// carries a *KeyViolationError), so callers dispatch with errors.Is and
// errors.As instead of matching message strings.
var (
	// ErrNoSuchVersion reports a version number outside 1..Versions().
	ErrNoSuchVersion = core.ErrNoSuchVersion
	// ErrNoSuchElement reports a selector that matches no archived
	// element.
	ErrNoSuchElement = core.ErrNoSuchElement
	// ErrAmbiguousSelector reports a selector whose predicates match more
	// than one element at some step.
	ErrAmbiguousSelector = core.ErrAmbiguousSelector
	// ErrBadSelector reports a selector that does not parse.
	ErrBadSelector = core.ErrBadSelector
	// ErrBadQuery reports a Select expression that does not parse.
	ErrBadQuery = qlang.ErrBadQuery
	// ErrCorruptArchive reports structural corruption discovered while
	// reading an archive.
	ErrCorruptArchive = core.ErrCorruptArchive
	// ErrClosed reports a call on a closed Store.
	ErrClosed = errors.New("xarch: store is closed")
	// ErrDegraded reports that the external engine's writer has been
	// poisoned by a failed durability-critical commit step (a failed
	// fsync or rename): reads keep serving the last committed
	// generation, writes fail fast until the store is reopened.
	ErrDegraded = extmem.ErrDegraded
)

// KeyViolationError aggregates every violation of a key specification
// found in one document; Add and ValidateDocument return it. Recover it
// with errors.As to inspect the individual violations.
type KeyViolationError = keys.ViolationsError

// KeyViolation describes one violation of a key specification: the path
// of the offending node, the violated key, and what went wrong.
type KeyViolation = keys.ValidationError
